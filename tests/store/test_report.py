"""Tests for cross-run reports and the regression instrument."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.store import (
    RunRecord,
    check_regression,
    check_store_regression,
    comparison_rows,
    diff_rows,
    render_comparison,
)


def make_record(label="run", seed=1, trace=(8.0, 4.0, 2.0), max_min=2.0,
                seconds=0.1, config=None, result=True):
    record = RunRecord(
        label=label, kind="engine",
        config=config if config is not None else {"algorithm": "algorithm2",
                                                  "seed": seed},
        seeds=[seed],
        result=None if not result else {
            "final_max_min": max_min, "final_max_avg": max_min / 2,
            "rounds": len(trace) - 1, "dummy_tokens": 0,
            "trace_max_min": list(trace),
        },
        timing={} if seconds is None else {"seconds": seconds},
    )
    return record


class TestComparisonRows:
    def test_one_row_per_record(self):
        rows = comparison_rows([make_record("a"), make_record("b", seed=2)])
        assert [row["label"] for row in rows] == ["a", "b"]
        assert rows[0]["idx"] == "#0"
        assert rows[0]["max_min"] == 2.0
        assert rows[0]["algorithm"] == "algorithm2"

    def test_empty_errors(self):
        with pytest.raises(ExperimentError):
            comparison_rows([])

    def test_missing_result_and_timing_render_as_dash(self):
        row = comparison_rows([make_record(result=False, seconds=None)])[0]
        assert row["max_min"] == "-"
        assert row["seconds"] == "-"


class TestDiffRows:
    def test_delta_columns(self):
        base = make_record(max_min=2.0, seconds=0.1)
        cand = make_record(max_min=3.0, seconds=0.2)
        rows = {row["metric"]: row for row in diff_rows(base, cand)}
        assert rows["final_max_min"]["delta"] == 1.0
        assert rows["seconds"]["delta"] == pytest.approx(0.1)

    def test_missing_metrics_render_as_dash(self):
        rows = diff_rows(make_record(result=False, seconds=None), make_record())
        assert all(row["baseline"] == "-" for row in rows)


class TestRenderComparison:
    def test_charts_traces(self):
        text = render_comparison([make_record("a"), make_record("b")])
        assert "max-min discrepancy per round" in text
        assert "#0 a" in text and "#1 b" in text

    def test_without_traces(self):
        text = render_comparison([make_record(result=False)])
        assert "no stored trajectories" in text


class TestCheckRegression:
    def test_identical_records_pass(self):
        outcome = check_regression(make_record(), make_record())
        assert outcome.ok
        assert outcome.pairs_checked == 1
        assert "PASS" in outcome.summary()

    def test_metric_drift_fails(self):
        outcome = check_regression(make_record(max_min=2.0),
                                   make_record(max_min=2.5))
        checks = [violation.check for violation in outcome.violations]
        assert "final_max_min" in checks

    def test_improvement_never_fails(self):
        outcome = check_regression(make_record(max_min=2.0, trace=(8.0, 2.0)),
                                   make_record(max_min=1.0, trace=(8.0, 2.0)))
        assert not [v for v in outcome.violations
                    if v.check.startswith("final")]

    def test_metric_drift_within_threshold_passes(self):
        outcome = check_regression(make_record(max_min=2.0),
                                   make_record(max_min=2.5),
                                   max_metric_drift=1.0)
        assert not [v for v in outcome.violations
                    if v.check == "final_max_min"]

    def test_trace_drift_fails_with_round_location(self):
        outcome = check_regression(make_record(trace=(8.0, 4.0, 2.0)),
                                   make_record(trace=(8.0, 5.0, 2.0)))
        drift = [v for v in outcome.violations if v.check == "trace-drift"]
        assert drift and "round 1" in drift[0].detail

    def test_trace_length_change_fails(self):
        outcome = check_regression(make_record(trace=(8.0, 4.0, 2.0)),
                                   make_record(trace=(8.0, 4.0)))
        assert [v.check for v in outcome.violations] == ["trace-length"]

    def test_timing_check_is_opt_in(self):
        fast = make_record(seconds=0.1)
        slow = make_record(seconds=10.0)
        assert check_regression(fast, slow).ok
        outcome = check_regression(fast, slow, max_timing_ratio=2.0)
        timing = [v for v in outcome.violations if v.check == "timing"]
        assert timing and timing[0].candidate_value == 10.0

    def test_config_mismatch_short_circuits(self):
        outcome = check_regression(make_record(config={"seed": 1}),
                                   make_record(config={"seed": 2}))
        assert [v.check for v in outcome.violations] == ["config-hash"]

    def test_config_mismatch_can_be_waived(self):
        outcome = check_regression(make_record(config={"seed": 1}),
                                   make_record(config={"seed": 2}),
                                   require_config_match=False)
        assert outcome.ok


class TestCheckStoreRegression:
    def test_matches_by_config_hash(self):
        baseline = [make_record("a", seed=1), make_record("b", seed=2)]
        candidate = [make_record("fresh-b", seed=2), make_record("fresh-a", seed=1)]
        outcome = check_store_regression(baseline, candidate)
        assert outcome.ok
        assert outcome.pairs_checked == 2

    def test_missing_candidate_is_a_coverage_violation(self):
        outcome = check_store_regression([make_record(seed=1)],
                                         [make_record(seed=2)])
        assert [v.check for v in outcome.violations] == ["coverage"]

    def test_latest_candidate_wins(self):
        good = make_record(seed=1)
        bad = make_record(seed=1, max_min=9.0, trace=(8.0, 9.0))
        assert not check_store_regression([good], [good, bad]).ok
        assert check_store_regression([good], [bad, good]).ok

    def test_benchmark_records_skipped_without_timing_ratio(self):
        bench = make_record(result=False)
        outcome = check_store_regression([bench], [])
        assert outcome.pairs_checked == 0
        assert not outcome.ok  # zero comparable pairs is not a pass
        assert "no comparable record pairs" in outcome.summary()

    def test_benchmark_records_timing_checked_when_enabled(self):
        base = make_record(result=False, seconds=0.1)
        slow = make_record(result=False, seconds=10.0)
        outcome = check_store_regression([base], [slow], max_timing_ratio=2.0)
        assert [v.check for v in outcome.violations] == ["timing"]

    def test_violation_rows_are_table_ready(self):
        outcome = check_store_regression([make_record(seed=1)], [])
        row = outcome.violations[0].as_row()
        assert set(row) == {"check", "baseline", "base_value", "cand_value",
                            "detail"}
