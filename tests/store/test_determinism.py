"""Store determinism across processes: the regression gate's foundation.

The ``repro report --check-regression`` gate compares trajectories with a
default tolerance of 0.0, which is only sound if the same (configuration,
seeds) pair reproduces the *identical* stored record from any process.  This
test runs the same sweep cell in two separate Python interpreters (not
forks — fresh processes with fresh hash randomisation) and asserts the
stored records agree on the config hash and the full trajectory.
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.store import RunStore, check_store_regression

_WORKER = """
import sys
sys.path.insert(0, {src!r})
from repro.simulation.parallel import grid_sweep_with_outcomes
from repro.simulation.sweep import SweepConfiguration
from repro.store import RunStore, record_sweep_outcomes

configuration = SweepConfiguration(
    algorithm="algorithm2", topology="torus", num_nodes=16,
    tokens_per_node=8, workload="point", rng_mode="counter")
_, outcomes = grid_sweep_with_outcomes([configuration], seeds=[1, 2],
                                       record_trace=True)
record_sweep_outcomes(RunStore({store!r}), "determinism", outcomes)
"""


@pytest.fixture(scope="module")
def two_process_stores(tmp_path_factory):
    root = tmp_path_factory.mktemp("stores")
    src = str(__import__("pathlib").Path(__file__).resolve()
              .parents[2] / "src")
    paths = []
    for name in ("first.jsonl", "second.jsonl"):
        store_path = str(root / name)
        subprocess.run([sys.executable, "-c",
                        _WORKER.format(src=src, store=store_path)],
                       check=True, timeout=120)
        paths.append(store_path)
    return paths


class TestTwoProcessDeterminism:
    def test_config_hashes_identical(self, two_process_stores):
        first, second = (RunStore(path).records()
                         for path in two_process_stores)
        assert [r.config_hash for r in first] == [r.config_hash for r in second]

    def test_trajectories_identical(self, two_process_stores):
        first, second = (RunStore(path).records()
                         for path in two_process_stores)
        for a, b in zip(first, second):
            assert a.trace() == b.trace()
            assert a.metric("final_max_min") == b.metric("final_max_min")
            assert a.metric("final_max_avg") == b.metric("final_max_avg")

    def test_regression_gate_passes_across_processes(self, two_process_stores):
        first, second = (RunStore(path).records()
                         for path in two_process_stores)
        outcome = check_store_regression(first, second)
        assert outcome.ok, outcome.summary()

    def test_full_result_payloads_identical(self, two_process_stores):
        first, second = (RunStore(path).records()
                         for path in two_process_stores)
        for a, b in zip(first, second):
            assert json.dumps(a.result, sort_keys=True) == json.dumps(
                b.result, sort_keys=True)
