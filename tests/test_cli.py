"""Tests for the command line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.topology == "torus"
        assert args.continuous == "fos"

    def test_invalid_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--algorithms", "frobnicate"])


class TestCommands:
    def test_compare_command_output(self, capsys):
        exit_code = main(["compare", "--topology", "cycle", "--nodes", "8",
                          "--tokens-per-node", "8",
                          "--algorithms", "round-down", "algorithm1", "--seed", "1"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "round-down" in output
        assert "algorithm1" in output
        assert "max_min" in output

    def test_compare_matching_model(self, capsys):
        exit_code = main(["compare", "--topology", "hypercube", "--nodes", "16",
                          "--tokens-per-node", "4", "--continuous", "periodic-matching",
                          "--algorithms", "matching-round-down", "algorithm1"])
        assert exit_code == 0
        assert "matching-round-down" in capsys.readouterr().out

    def test_initial_load_command(self, capsys):
        exit_code = main(["initial-load"])
        assert exit_code == 0
        assert "base_level" in capsys.readouterr().out

    def test_scaling_command(self, capsys):
        exit_code = main(["scaling", "--family", "cycle", "--sizes", "8", "16"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "algorithm" in output

    def test_scenario_command(self, capsys, tmp_path):
        from repro.simulation.scenario import Scenario

        scenario_path = Scenario(name="cli-demo", algorithm="algorithm1", topology="cycle",
                                 num_nodes=8, tokens_per_node=8, seed=1).to_json(
            tmp_path / "scenario.json")
        csv_path = tmp_path / "result.csv"
        exit_code = main(["scenario", "--file", str(scenario_path), "--csv", str(csv_path)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "cli-demo" in output
        assert csv_path.exists()

    def test_sweep_command(self, capsys):
        exit_code = main(["sweep", "--algorithm", "algorithm2", "--topology", "torus",
                          "--nodes", "16", "--tokens-per-node", "8",
                          "--seeds", "1", "2"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "algorithm2" in output
        assert "max_min_mean" in output

    def test_dynamic_command(self, capsys, tmp_path):
        csv_path = tmp_path / "dynamic.csv"
        exit_code = main(["dynamic", "--scenario", "burst", "--algorithm", "algorithm2",
                          "--topology", "torus", "--nodes", "16", "--tokens-per-node", "6",
                          "--rounds", "80", "--seed", "3", "--csv", str(csv_path)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "dynamic 'burst' stream" in output
        assert "steady_state" in output
        assert "burst at round" in output
        assert csv_path.exists()

    def test_sweep_command_with_workers(self, capsys):
        exit_code = main(["sweep", "--algorithm", "algorithm2", "--topology", "torus",
                          "--nodes", "16", "--tokens-per-node", "8",
                          "--seeds", "1", "2", "3", "--workers", "2",
                          "--rng-mode", "counter"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "algorithm2" in output
        assert "max_min_mean" in output

    def test_sweep_command_accepts_shared_registry_workloads(self, capsys):
        exit_code = main(["sweep", "--algorithm", "algorithm1", "--topology", "cycle",
                          "--nodes", "8", "--tokens-per-node", "4",
                          "--workload", "two-point", "--seeds", "1"])
        assert exit_code == 0
        assert "two-point" in capsys.readouterr().out

    def test_sweep_command_legacy_seeding(self, capsys):
        exit_code = main(["sweep", "--algorithm", "algorithm1", "--topology", "cycle",
                          "--nodes", "8", "--tokens-per-node", "4",
                          "--seeds", "1", "--legacy-seeding"])
        assert exit_code == 0

    def test_grid_command(self, capsys):
        exit_code = main(["grid", "--algorithms", "round-down", "algorithm1",
                          "--topologies", "cycle:8", "torus:16",
                          "--tokens-per-node", "8", "--seeds", "1", "2",
                          "--workers", "2"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "round-down" in output and "algorithm1" in output
        assert "cycle" in output and "torus" in output

    def test_grid_command_rejects_malformed_topology_entry(self, capsys):
        with pytest.raises(SystemExit):
            main(["grid", "--algorithms", "round-down",
                  "--topologies", "torus:4x4", "--seeds", "1"])
        assert "invalid --topologies entry" in capsys.readouterr().err

    def test_grid_command_bare_topology_uses_nodes(self, capsys):
        exit_code = main(["grid", "--algorithms", "round-down",
                          "--topologies", "cycle", "--nodes", "8",
                          "--tokens-per-node", "4", "--seeds", "1"])
        assert exit_code == 0
        assert "cycle" in capsys.readouterr().out

    def test_dynamic_seed_grid(self, capsys):
        exit_code = main(["dynamic", "--scenario", "burst", "--algorithm", "algorithm2",
                          "--topology", "torus", "--nodes", "16",
                          "--tokens-per-node", "6", "--rounds", "60",
                          "--seeds", "1", "2", "--workers", "2",
                          "--warmup", "5", "--rng-mode", "counter"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "2 seed(s)" in output
        assert "seed 1" in output and "seed 2" in output

    def test_dynamic_rejects_unknown_profile(self, capsys):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            main(["dynamic", "--scenario", "tsunami"])

    def test_audit_command(self, capsys):
        exit_code = main(["audit", "--algorithm", "algorithm1", "--topology", "cycle",
                          "--nodes", "12", "--tokens-per-node", "8", "--seed", "3"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "audited" in output
        assert "clean" in output
        assert "Theorem 3 bound" in output


class TestStoreAndReportCommands:
    def _populate(self, store_path):
        exit_code = main(["sweep", "--algorithm", "algorithm2",
                          "--topology", "torus", "--nodes", "16",
                          "--tokens-per-node", "8", "--seeds", "1", "2",
                          "--rng-mode", "counter",
                          "--store", str(store_path),
                          "--store-label", "test-sweep"])
        assert exit_code == 0
        return store_path

    def test_sweep_store_writes_per_seed_records(self, tmp_path, capsys):
        from repro.store import RunStore

        store_path = self._populate(tmp_path / "runs.jsonl")
        assert "stored 2 record(s)" in capsys.readouterr().out
        records = RunStore(store_path).records()
        assert [record.label for record in records] == ["test-sweep"] * 2
        assert all(record.kind == "sweep" for record in records)
        assert all(record.trace() for record in records)
        assert all(record.timing["seconds"] > 0 for record in records)

    def test_dynamic_store_records_run(self, tmp_path, capsys):
        from repro.store import RunStore

        store_path = tmp_path / "runs.jsonl"
        exit_code = main(["dynamic", "--nodes", "16", "--rounds", "20",
                          "--rng-mode", "counter", "--store", str(store_path),
                          "--store-label", "test-dyn"])
        assert exit_code == 0
        record = RunStore(store_path).records()[0]
        assert record.kind == "dynamic"
        assert record.label == "test-dyn"
        assert record.timing["seconds"] > 0

    def test_report_lists_records(self, tmp_path, capsys):
        store_path = self._populate(tmp_path / "runs.jsonl")
        capsys.readouterr()
        exit_code = main(["report", "--store", str(store_path)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "2 record(s)" in output
        assert "test-sweep" in output
        assert "max-min discrepancy per round" in output

    def test_report_diff(self, tmp_path, capsys):
        store_path = self._populate(tmp_path / "runs.jsonl")
        capsys.readouterr()
        exit_code = main(["report", "--store", str(store_path),
                          "--diff", "#0", "#1", "--no-chart"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "final_max_min" in output and "delta" in output

    def test_report_missing_store_exits_2(self, tmp_path, capsys):
        exit_code = main(["report", "--store", str(tmp_path / "nope.jsonl")])
        assert exit_code == 2
        assert "no such run store" in capsys.readouterr().err

    def test_check_regression_passes_on_rerun(self, tmp_path, capsys):
        baseline = self._populate(tmp_path / "baseline.jsonl")
        candidate = self._populate(tmp_path / "candidate.jsonl")
        capsys.readouterr()
        exit_code = main(["report", "--store", str(candidate),
                          "--check-regression",
                          "--baseline-store", str(baseline)])
        assert exit_code == 0
        assert "PASS" in capsys.readouterr().out

    def test_check_regression_trips_on_trace_drift(self, tmp_path, capsys):
        import json

        baseline = self._populate(tmp_path / "baseline.jsonl")
        drifted = tmp_path / "drifted.jsonl"
        records = [json.loads(line) for line in baseline.read_text().splitlines()]
        for record in records:
            record["result"]["trace_max_min"][-1] += 1.0
        drifted.write_text("".join(json.dumps(record) + "\n"
                                   for record in records))
        capsys.readouterr()
        exit_code = main(["report", "--store", str(drifted),
                          "--check-regression", "--baseline-store", str(baseline)])
        assert exit_code == 1
        assert "trace-drift" in capsys.readouterr().out

    def test_check_regression_trips_on_injected_slowdown(self, tmp_path, capsys):
        import json

        baseline = self._populate(tmp_path / "baseline.jsonl")
        slow = tmp_path / "slow.jsonl"
        records = [json.loads(line) for line in baseline.read_text().splitlines()]
        for record in records:
            record["timing"] = {"seconds": 999.0}
        slow.write_text("".join(json.dumps(record) + "\n" for record in records))
        capsys.readouterr()
        exit_code = main(["report", "--store", str(slow),
                          "--check-regression", "--baseline-store", str(baseline),
                          "--max-timing-ratio", "3"])
        assert exit_code == 1
        assert "timing" in capsys.readouterr().out

    def test_check_regression_requires_baseline(self, tmp_path, capsys):
        store_path = self._populate(tmp_path / "runs.jsonl")
        with pytest.raises(SystemExit):
            main(["report", "--store", str(store_path), "--check-regression"])
        assert "requires --baseline-store" in capsys.readouterr().err

    def test_sweep_telemetry_streams_to_stderr(self, capsys):
        exit_code = main(["sweep", "--algorithm", "algorithm2",
                          "--topology", "torus", "--nodes", "16",
                          "--tokens-per-node", "8", "--seeds", "1",
                          "--rng-mode", "counter", "--telemetry", "5"])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "[engine] run_start" in captured.err
        assert "[engine] run_end" in captured.err
        assert "[engine]" not in captured.out  # telemetry stays off stdout

    def test_ci_baseline_store_matches_fresh_runs(self, tmp_path, capsys):
        """The checked-in CI baseline must stay reproducible bit-for-bit."""
        import pathlib

        baseline = (pathlib.Path(__file__).resolve().parent.parent
                    / "ci" / "baseline_store.jsonl")
        store_path = tmp_path / "fresh.jsonl"
        for argv in (
            ["sweep", "--algorithm", "algorithm2", "--nodes", "16",
             "--tokens-per-node", "8", "--seeds", "1", "2",
             "--rng-mode", "counter", "--store", str(store_path),
             "--store-label", "ci-sweep"],
            ["sweep", "--algorithm", "round-down", "--nodes", "16",
             "--tokens-per-node", "8", "--seeds", "1",
             "--rng-mode", "counter", "--store", str(store_path),
             "--store-label", "ci-rounddown"],
            ["dynamic", "--nodes", "16", "--rounds", "40",
             "--rng-mode", "counter", "--store", str(store_path),
             "--store-label", "ci-dynamic"],
        ):
            assert main(argv) == 0
        capsys.readouterr()
        exit_code = main(["report", "--store", str(store_path),
                          "--check-regression", "--baseline-store",
                          str(baseline)])
        assert exit_code == 0, capsys.readouterr().out

    def test_sweep_store_and_telemetry_together(self, tmp_path, capsys):
        """--store routes through the outcome driver; the bus must ride along."""
        from repro.store import RunStore

        store_path = tmp_path / "runs.jsonl"
        exit_code = main(["sweep", "--algorithm", "algorithm2",
                          "--topology", "torus", "--nodes", "16",
                          "--tokens-per-node", "8", "--seeds", "1",
                          "--rng-mode", "counter", "--store", str(store_path),
                          "--telemetry", "10"])
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "[parallel] cell_done" in captured.err
        assert len(RunStore(store_path).records()) == 1



class TestFaultToleranceCLI:
    def test_fault_tolerance_flags_parse_with_defaults(self):
        for argv in (["sweep", "--algorithm", "algorithm2"],
                     ["grid", "--algorithms", "algorithm2"],
                     ["dynamic"]):
            args = build_parser().parse_args(argv)
            assert args.cell_timeout is None
            assert args.max_retries == 0
            assert args.strict is True
        args = build_parser().parse_args(
            ["dynamic", "--cell-timeout", "2.5", "--max-retries", "3",
             "--no-strict"])
        assert args.cell_timeout == 2.5
        assert args.max_retries == 3
        assert args.strict is False

    def test_checkpoint_every_rejected_on_seed_grids(self):
        with pytest.raises(SystemExit):
            main(["dynamic", "--seeds", "1", "2", "--checkpoint-every", "5"])

    def test_dynamic_checkpoint_then_resume_round_trip(self, tmp_path, capsys):
        checkpoint = tmp_path / "run.checkpoint.json"
        exit_code = main(["dynamic", "--nodes", "12", "--rounds", "20",
                          "--rng-mode", "counter", "--seed", "7",
                          "--checkpoint-every", "5",
                          "--checkpoint-path", str(checkpoint)])
        assert exit_code == 0
        first = capsys.readouterr().out
        assert "checkpointed every 5 round(s)" in first
        assert checkpoint.exists()

        exit_code = main(["resume", "--checkpoint", str(checkpoint)])
        assert exit_code == 0
        resumed = capsys.readouterr().out
        assert "resuming" in resumed
        assert "round 20 of 20" in resumed
        # the summary row of the completed run is reproduced exactly:
        # dynamic prints [scenario, seed, algorithm, ...], resume prints
        # [scenario, algorithm, ...] — the metric tail must match
        original_row = [line.split()[2:] for line in first.splitlines()
                        if line.startswith("burst ")]
        resumed_row = [line.split()[1:] for line in resumed.splitlines()
                       if line.startswith("cli-burst ")]
        assert original_row and original_row == resumed_row

    def test_resume_corrupt_checkpoint_exits_2(self, tmp_path, capsys):
        from repro.faults import truncate_checkpoint

        checkpoint = tmp_path / "run.checkpoint.json"
        assert main(["dynamic", "--nodes", "8", "--rounds", "8",
                     "--rng-mode", "counter", "--checkpoint-every", "4",
                     "--checkpoint-path", str(checkpoint)]) == 0
        truncate_checkpoint(checkpoint, keep_fraction=0.4)
        capsys.readouterr()
        assert main(["resume", "--checkpoint", str(checkpoint)]) == 2
        assert "corrupt or truncated" in capsys.readouterr().err

    def test_resume_missing_checkpoint_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["resume", "--checkpoint", str(missing)]) == 2
        assert "no such checkpoint" in capsys.readouterr().err

    def test_keyboard_interrupt_exits_130_with_partial_paths(
            self, tmp_path, capsys, monkeypatch):
        import repro.cli as cli_module

        def boom(args, parser):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli_module, "_run_command", boom)
        checkpoint = tmp_path / "partial.checkpoint.json"
        exit_code = main(["dynamic", "--checkpoint-every", "5",
                          "--checkpoint-path", str(checkpoint)])
        assert exit_code == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert f"partial results: {checkpoint}" in err
        assert "resume with:" in err
