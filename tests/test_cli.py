"""Tests for the command line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.topology == "torus"
        assert args.continuous == "fos"

    def test_invalid_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--algorithms", "frobnicate"])


class TestCommands:
    def test_compare_command_output(self, capsys):
        exit_code = main(["compare", "--topology", "cycle", "--nodes", "8",
                          "--tokens-per-node", "8",
                          "--algorithms", "round-down", "algorithm1", "--seed", "1"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "round-down" in output
        assert "algorithm1" in output
        assert "max_min" in output

    def test_compare_matching_model(self, capsys):
        exit_code = main(["compare", "--topology", "hypercube", "--nodes", "16",
                          "--tokens-per-node", "4", "--continuous", "periodic-matching",
                          "--algorithms", "matching-round-down", "algorithm1"])
        assert exit_code == 0
        assert "matching-round-down" in capsys.readouterr().out

    def test_initial_load_command(self, capsys):
        exit_code = main(["initial-load"])
        assert exit_code == 0
        assert "base_level" in capsys.readouterr().out

    def test_scaling_command(self, capsys):
        exit_code = main(["scaling", "--family", "cycle", "--sizes", "8", "16"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "algorithm" in output

    def test_scenario_command(self, capsys, tmp_path):
        from repro.simulation.scenario import Scenario

        scenario_path = Scenario(name="cli-demo", algorithm="algorithm1", topology="cycle",
                                 num_nodes=8, tokens_per_node=8, seed=1).to_json(
            tmp_path / "scenario.json")
        csv_path = tmp_path / "result.csv"
        exit_code = main(["scenario", "--file", str(scenario_path), "--csv", str(csv_path)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "cli-demo" in output
        assert csv_path.exists()

    def test_sweep_command(self, capsys):
        exit_code = main(["sweep", "--algorithm", "algorithm2", "--topology", "torus",
                          "--nodes", "16", "--tokens-per-node", "8",
                          "--seeds", "1", "2"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "algorithm2" in output
        assert "max_min_mean" in output

    def test_dynamic_command(self, capsys, tmp_path):
        csv_path = tmp_path / "dynamic.csv"
        exit_code = main(["dynamic", "--scenario", "burst", "--algorithm", "algorithm2",
                          "--topology", "torus", "--nodes", "16", "--tokens-per-node", "6",
                          "--rounds", "80", "--seed", "3", "--csv", str(csv_path)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "dynamic 'burst' stream" in output
        assert "steady_state" in output
        assert "burst at round" in output
        assert csv_path.exists()

    def test_sweep_command_with_workers(self, capsys):
        exit_code = main(["sweep", "--algorithm", "algorithm2", "--topology", "torus",
                          "--nodes", "16", "--tokens-per-node", "8",
                          "--seeds", "1", "2", "3", "--workers", "2",
                          "--rng-mode", "counter"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "algorithm2" in output
        assert "max_min_mean" in output

    def test_sweep_command_accepts_shared_registry_workloads(self, capsys):
        exit_code = main(["sweep", "--algorithm", "algorithm1", "--topology", "cycle",
                          "--nodes", "8", "--tokens-per-node", "4",
                          "--workload", "two-point", "--seeds", "1"])
        assert exit_code == 0
        assert "two-point" in capsys.readouterr().out

    def test_sweep_command_legacy_seeding(self, capsys):
        exit_code = main(["sweep", "--algorithm", "algorithm1", "--topology", "cycle",
                          "--nodes", "8", "--tokens-per-node", "4",
                          "--seeds", "1", "--legacy-seeding"])
        assert exit_code == 0

    def test_grid_command(self, capsys):
        exit_code = main(["grid", "--algorithms", "round-down", "algorithm1",
                          "--topologies", "cycle:8", "torus:16",
                          "--tokens-per-node", "8", "--seeds", "1", "2",
                          "--workers", "2"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "round-down" in output and "algorithm1" in output
        assert "cycle" in output and "torus" in output

    def test_grid_command_rejects_malformed_topology_entry(self, capsys):
        with pytest.raises(SystemExit):
            main(["grid", "--algorithms", "round-down",
                  "--topologies", "torus:4x4", "--seeds", "1"])
        assert "invalid --topologies entry" in capsys.readouterr().err

    def test_grid_command_bare_topology_uses_nodes(self, capsys):
        exit_code = main(["grid", "--algorithms", "round-down",
                          "--topologies", "cycle", "--nodes", "8",
                          "--tokens-per-node", "4", "--seeds", "1"])
        assert exit_code == 0
        assert "cycle" in capsys.readouterr().out

    def test_dynamic_seed_grid(self, capsys):
        exit_code = main(["dynamic", "--scenario", "burst", "--algorithm", "algorithm2",
                          "--topology", "torus", "--nodes", "16",
                          "--tokens-per-node", "6", "--rounds", "60",
                          "--seeds", "1", "2", "--workers", "2",
                          "--warmup", "5", "--rng-mode", "counter"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "2 seed(s)" in output
        assert "seed 1" in output and "seed 2" in output

    def test_dynamic_rejects_unknown_profile(self, capsys):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            main(["dynamic", "--scenario", "tsunami"])

    def test_audit_command(self, capsys):
        exit_code = main(["audit", "--algorithm", "algorithm1", "--topology", "cycle",
                          "--nodes", "12", "--tokens-per-node", "8", "--seed", "3"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "audited" in output
        assert "clean" in output
        assert "Theorem 3 bound" in output
