"""Tests for cross-process telemetry capture and relay (:mod:`repro.obs.relay`).

The load-bearing property is **worker-count invariance of the relayed
stream**: a grid run at ``workers=1``, ``2`` and ``4`` must relay the same
events in the same order — the serial per-cell stream plus attribution — and
capturing telemetry must never change a trajectory.
"""

from __future__ import annotations

import io

import pytest

from repro.obs import (
    EventLog,
    GridProgress,
    MetricsBus,
    TelemetryEvent,
    TelemetryRecorder,
    event_signature,
    relay_outcome,
)
from repro.obs.relay import CapturedEvent
from repro.simulation.parallel import run_cells, sweep_cells
from repro.simulation.sweep import SweepConfiguration, run_sweep_cell

WORKER_COUNTS = (1, 2, 4)


def small_grid_cells(seeds=(1, 2, 3)):
    configurations = [
        SweepConfiguration(algorithm=algorithm, topology="torus", num_nodes=16,
                           tokens_per_node=8, rng_mode="counter")
        for algorithm in ("algorithm2", "round-down")
    ]
    return configurations, sweep_cells(configurations, list(seeds))


def relayed_events(cells, workers):
    bus = MetricsBus()
    with EventLog(bus) as log:
        outcomes = run_cells(cells, workers=workers, bus=bus)
    return log.events, outcomes


class TestWorkerCountInvariance:
    def test_relayed_stream_identical_across_worker_counts(self):
        _, cells = small_grid_cells()
        streams = [relayed_events(cells, workers)[0]
                   for workers in WORKER_COUNTS]
        signatures = [[event_signature(event) for event in stream]
                      for stream in streams]
        assert signatures[0] == signatures[1] == signatures[2]
        # the streams are non-trivial: every cell contributed rounds
        assert len(signatures[0]) > len(cells)

    def test_relayed_stream_matches_serial_modulo_attribution(self):
        _, cells = small_grid_cells(seeds=(5, 6))
        relayed, _ = relayed_events(cells, workers=2)
        relayed = [event for event in relayed if event.kind != "cell_done"]

        serial = []
        for cell in cells:
            bus = MetricsBus()
            with EventLog(bus) as log:
                run_sweep_cell(cell.spec, cell.seed, bus=bus)
            serial.extend(log.events)

        assert [event_signature(event) for event in relayed] == \
            [event_signature(event) for event in serial]

    def test_trajectories_bit_identical_with_and_without_capture(self):
        _, cells = small_grid_cells()
        plain = run_cells(cells, workers=2, capture=False)
        traced = run_cells(cells, workers=2, capture=True)

        def fingerprint(outcome):
            result = outcome.result
            return (result.final_max_min, result.final_max_avg,
                    result.rounds, result.dummy_tokens)

        assert [fingerprint(outcome) for outcome in plain] == \
            [fingerprint(outcome) for outcome in traced]
        assert all(outcome.events is None for outcome in plain)
        assert all(outcome.events for outcome in traced)


class TestRelayAttribution:
    def test_relayed_events_carry_attribution(self):
        _, cells = small_grid_cells(seeds=(1, 2))
        events, outcomes = relayed_events(cells, workers=2)
        relayed = [event for event in events if event.kind != "cell_done"]
        assert relayed
        worker_pids = {outcome.worker_pid for outcome in outcomes}
        for event in relayed:
            for key in ("worker", "cell", "cell_seed", "ts"):
                assert key in event.payload
            assert event.payload["worker"] in worker_pids
        # cell attribution is the flat grid position: one lane per cell
        assert {event.payload["cell"] for event in relayed} == \
            set(range(len(cells)))

    def test_cell_done_positions_are_input_order(self):
        _, cells = small_grid_cells(seeds=(1, 2))
        events, _ = relayed_events(cells, workers=2)
        envelopes = [event for event in events if event.kind == "cell_done"]
        assert [event.payload["position"] for event in envelopes] == \
            list(range(len(cells)))
        for envelope in envelopes:
            assert envelope.payload["started"] > 0
            assert envelope.payload["seconds"] > 0


class TestRelayOutcome:
    def make_captured(self, payload=None):
        return [CapturedEvent(ts=1.5, kind="round", source="engine",
                              round_index=0, payload=dict(payload or {}))]

    def test_attribution_added_and_original_keys_win(self):
        bus = MetricsBus()
        with EventLog(bus) as log:
            count = relay_outcome(bus, self.make_captured({"worker": "mine",
                                                           "max_min": 2.0}),
                                  worker=77, cell=3, cell_seed=9)
        assert count == 1
        payload = log.events[0].payload
        assert payload["worker"] == "mine"  # original payload key wins
        assert payload["cell"] == 3
        assert payload["cell_seed"] == 9
        assert payload["ts"] == 1.5
        assert payload["max_min"] == 2.0

    def test_noop_without_audience_or_events(self):
        assert relay_outcome(None, self.make_captured(), 1, 0, 0) == 0
        assert relay_outcome(MetricsBus(), self.make_captured(), 1, 0, 0) == 0
        bus = MetricsBus()
        with EventLog(bus):
            assert relay_outcome(bus, [], 1, 0, 0) == 0


class TestTelemetryRecorder:
    def test_freezes_events_with_capture_timestamp(self):
        ticks = iter([10.0, 20.0])
        recorder = TelemetryRecorder(clock=lambda: next(ticks))
        bus = MetricsBus()
        bus.subscribe(recorder)
        bus.emit("round", "engine", round_index=0, max_min=4.0)
        bus.emit("run_end", "engine", rounds=1)
        first, second = recorder.events
        assert (first.ts, first.kind, first.round_index) == (10.0, "round", 0)
        assert first.payload == {"max_min": 4.0}
        assert (second.ts, second.kind) == (20.0, "run_end")


class TestEventSignature:
    def test_strips_attribution_and_timing(self):
        event = TelemetryEvent(kind="round", source="engine", round_index=2,
                               payload={"worker": 9, "cell": 1, "cell_seed": 3,
                                        "ts": 0.5, "kernel_seconds": 0.01,
                                        "kernel_phases": {"a": 1}, "max_min": 2.0})
        bare = TelemetryEvent(kind="round", source="engine", round_index=2,
                              payload={"max_min": 2.0})
        assert event_signature(event) == event_signature(bare)

    def test_timing_false_keeps_timing_fields(self):
        slow = TelemetryEvent(kind="round", source="engine", round_index=0,
                              payload={"kernel_seconds": 0.9})
        fast = TelemetryEvent(kind="round", source="engine", round_index=0,
                              payload={"kernel_seconds": 0.1})
        assert event_signature(slow) == event_signature(fast)
        assert event_signature(slow, timing=False) != \
            event_signature(fast, timing=False)


class TestGridProgress:
    def make(self, total=4):
        stream = io.StringIO()
        ticks = iter(float(i) for i in range(100))
        return GridProgress(total, label="t", stream=stream,
                            clock=lambda: next(ticks)), stream

    def test_non_tty_writes_one_flushed_line_per_update(self):
        progress, stream = self.make()
        progress.update(worker_pid=11, seconds=0.5)
        progress.update(worker_pid=12, seconds=0.25)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("[t] 1/4 cells")
        assert "2 workers busy 0.8s" in lines[1]

    def test_eta_projection_and_completion(self):
        state = {"now": 0.0}
        progress = GridProgress(4, label="t", stream=io.StringIO(),
                                clock=lambda: state["now"])
        state["now"] = 3.0
        progress.update()  # 1/4 done after 3s -> 9s to go at this rate
        assert progress.eta_seconds == pytest.approx(9.0)
        for _ in range(3):
            progress.update()
        assert progress.eta_seconds is None

    def test_subscriber_filters_to_cell_done(self):
        progress, _ = self.make()
        progress(TelemetryEvent(kind="round", source="engine"))
        assert progress.done == 0
        progress(TelemetryEvent(kind="cell_done", source="parallel",
                                payload={"worker_pid": 5, "seconds": 1.0}))
        assert progress.done == 1
        assert progress.busy_by_worker == {5: 1.0}

    def test_finish_reports_utilization(self):
        progress, stream = self.make(total=2)
        progress.update(worker_pid=1, seconds=2.0)
        progress.update(worker_pid=2, seconds=2.0)
        summary = progress.finish()
        assert summary in stream.getvalue()
        assert "2/2 cells" in summary
        assert "2 worker(s)" in summary
        assert "utilization" in summary
