"""Round-probe integration: telemetry is read-only and complete.

The two invariants that make the bus trustworthy:

* attaching a bus (with or without subscribers) never changes a trajectory —
  instrumented runs are bit-identical to uninstrumented ones;
* every executed round emits exactly one ``"round"`` event with the
  documented payload, and the run brackets with ``run_start`` / ``run_end``.
"""

from __future__ import annotations

import pytest

from repro.dynamic.events import BurstyArrivals
from repro.dynamic.stream import run_stream
from repro.network import topologies
from repro.obs import EventLog, MetricsBus
from repro.simulation.engine import run_algorithm
from repro.tasks.generators import point_load, uniform_random_load


def run_once(bus=None, algorithm="algorithm2", rounds=12, **kwargs):
    network = topologies.torus(4, dims=2)
    load = point_load(network, 32 * network.num_nodes)
    return run_algorithm(algorithm, network, initial_load=load, rounds=rounds,
                         seed=5, record_trace=True, rng_mode="counter",
                         bus=bus, **kwargs)


class TestEngineProbe:
    def test_trajectory_identical_with_and_without_bus(self):
        plain = run_once()
        bus = MetricsBus()
        with EventLog(bus):
            observed = run_once(bus=bus)
        assert observed.trace_max_min == plain.trace_max_min
        assert observed.final_max_min == plain.final_max_min
        assert observed.dummy_tokens == plain.dummy_tokens

    def test_one_round_event_per_executed_round(self):
        bus = MetricsBus()
        with EventLog(bus) as log:
            result = run_once(bus=bus)
        rounds = log.of_kind("round")
        assert len(rounds) == result.rounds
        assert [event.round_index for event in rounds] == list(range(result.rounds))

    def test_round_payload_contents(self):
        bus = MetricsBus()
        with EventLog(bus) as log:
            result = run_once(bus=bus)
        payload = log.of_kind("round")[-1].payload
        assert payload["algorithm"] == "algorithm2"
        assert payload["backend"] == result.extra["backend"]
        assert payload["rng_mode"] == "counter"
        assert payload["kernel_seconds"] >= 0.0
        assert payload["max_min"] == result.final_max_min
        # flow-imitation runs report the RoundReport counters per round
        assert "transfers" in payload and "tasks_moved" in payload
        assert "dummy_tokens_total" in payload

    def test_run_bracketed_by_start_and_end(self):
        bus = MetricsBus()
        with EventLog(bus) as log:
            result = run_once(bus=bus)
        assert log.kinds()[0] == "run_start"
        assert log.kinds()[-1] == "run_end"
        start = log.of_kind("run_start")[0].payload
        end = log.of_kind("run_end")[0].payload
        assert start["n"] == 16 and start["rng_mode"] == "counter"
        assert end["max_min"] == result.final_max_min
        assert end["kernel_seconds"] == pytest.approx(
            result.extra["kernel_seconds"])

    def test_kernel_seconds_recorded_in_extra(self):
        bus = MetricsBus()
        result = run_once(bus=bus)  # no subscriber: probe still accumulates
        assert result.extra["kernel_seconds"] > 0.0

    def test_no_bus_means_no_kernel_seconds(self):
        assert "kernel_seconds" not in run_once().extra

    def test_baseline_algorithms_report_went_negative(self):
        bus = MetricsBus()
        with EventLog(bus) as log:
            run_once(bus=bus, algorithm="round-down")
        payload = log.of_kind("round")[-1].payload
        assert "went_negative" in payload
        assert "transfers" not in payload

    def test_probe_detached_after_run(self):
        bus = MetricsBus()
        with EventLog(bus) as log:
            run_once(bus=bus)
        count = len(log.events)
        run_once()  # a fresh, uninstrumented run emits nothing
        assert len(log.events) == count


class TestStreamProbe:
    def run_stream_once(self, bus=None):
        network = topologies.torus(4, dims=2)
        load = uniform_random_load(network, 8 * network.num_nodes, seed=3)
        generator = BurstyArrivals(32, period=5, first_round=2, seed=3)
        return run_stream("algorithm2", network, load, generator, rounds=15,
                          seed=3, rng_mode="counter", bus=bus)

    def test_trajectory_identical_with_and_without_bus(self):
        plain = self.run_stream_once()
        bus = MetricsBus()
        with EventLog(bus):
            observed = self.run_stream_once(bus=bus)
        assert observed.trace_max_min == plain.trace_max_min
        assert observed.trace_total_weight == plain.trace_total_weight
        assert observed.event_timeline == plain.event_timeline

    def test_stream_round_events(self):
        bus = MetricsBus()
        with EventLog(bus) as log:
            result = self.run_stream_once(bus=bus)
        stream_rounds = log.of_kind("stream_round")
        assert len(stream_rounds) == result.rounds
        payload = stream_rounds[-1].payload
        assert {"max_min", "total_load", "events_applied",
                "events_rejected", "recoupled"} <= set(payload)

    def test_recouple_events_match_recouplings(self):
        bus = MetricsBus()
        with EventLog(bus) as log:
            result = self.run_stream_once(bus=bus)
        recouples = log.of_kind("recouple")
        assert len(recouples) == result.extra["recouplings"]
        assert all(event.payload["mode"] in ("full", "fast")
                   for event in recouples)

    def test_kernel_seconds_in_extra(self):
        bus = MetricsBus()
        result = self.run_stream_once(bus=bus)
        assert result.extra["kernel_seconds"] > 0.0


class TestDriverCellEvents:
    def test_cell_done_envelope_per_cell(self):
        """The serial outcome driver publishes one cell_done event per cell."""
        from repro.obs import EventLog, MetricsBus
        from repro.simulation.parallel import grid_sweep_with_outcomes
        from repro.simulation.sweep import SweepConfiguration

        configuration = SweepConfiguration(
            algorithm="algorithm2", topology="torus", num_nodes=16,
            tokens_per_node=8, rng_mode="counter")
        bus = MetricsBus()
        with EventLog(bus, kinds=["cell_done"]) as log:
            _, outcomes = grid_sweep_with_outcomes(
                [configuration], seeds=[1, 2], bus=bus)
        assert len(log.events) == len(outcomes) == 2
        for event, outcome in zip(log.events, outcomes):
            assert event.payload["cell_kind"] == "sweep"
            assert event.payload["seed"] == outcome.cell.seed
            assert event.payload["seconds"] == outcome.seconds
            assert event.payload["max_min"] == outcome.result.final_max_min
