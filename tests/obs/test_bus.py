"""Tests for the telemetry bus (:mod:`repro.obs.bus`)."""

from __future__ import annotations

import io

import pytest

from repro.exceptions import ExperimentError
from repro.obs import ConsoleSubscriber, EventLog, MetricsBus, TelemetryEvent


class TestTelemetryEvent:
    def test_as_dict_flattens_payload(self):
        event = TelemetryEvent(kind="round", source="engine", round_index=3,
                               payload={"max_min": 2.0, "backend": "array"})
        row = event.as_dict()
        assert row == {"kind": "round", "source": "engine", "round": 3,
                       "max_min": 2.0, "backend": "array"}

    def test_as_dict_omits_round_for_run_level_events(self):
        row = TelemetryEvent(kind="run_start", source="engine").as_dict()
        assert "round" not in row

    def test_as_dict_payload_cannot_shadow_identity(self):
        event = TelemetryEvent(kind="round", source="engine", round_index=1,
                               payload={"kind": "evil", "round": 99})
        row = event.as_dict()
        assert row["kind"] == "round"
        assert row["round"] == 1

    def test_frozen(self):
        event = TelemetryEvent(kind="round", source="engine")
        with pytest.raises(AttributeError):
            event.kind = "other"


class TestMetricsBus:
    def test_inactive_without_subscribers(self):
        bus = MetricsBus()
        assert not bus.active
        assert bus.emit("round", "engine", max_min=1.0) is None
        assert bus.events_emitted == 0

    def test_emit_delivers_to_subscriber(self):
        bus = MetricsBus()
        seen = []
        bus.subscribe(seen.append)
        event = bus.emit("round", "engine", round_index=0, max_min=4.0)
        assert bus.active
        assert seen == [event]
        assert event.payload["max_min"] == 4.0
        assert bus.events_emitted == 1

    def test_kind_filter(self):
        bus = MetricsBus()
        rounds, everything = [], []
        bus.subscribe(rounds.append, kinds=["round"])
        bus.subscribe(everything.append)
        bus.emit("round", "engine")
        bus.emit("run_end", "engine")
        assert [event.kind for event in rounds] == ["round"]
        assert [event.kind for event in everything] == ["round", "run_end"]

    def test_subscribers_called_in_order(self):
        bus = MetricsBus()
        order = []
        bus.subscribe(lambda event: order.append("first"))
        bus.subscribe(lambda event: order.append("second"))
        bus.emit("round", "engine")
        assert order == ["first", "second"]

    def test_unsubscribe(self):
        bus = MetricsBus()
        seen = []
        subscriber = bus.subscribe(seen.append)
        bus.emit("round", "engine")
        bus.unsubscribe(subscriber)
        assert not bus.active
        bus.emit("round", "engine")
        assert len(seen) == 1

    def test_unsubscribe_unknown_errors(self):
        bus = MetricsBus()
        with pytest.raises(ExperimentError):
            bus.unsubscribe(lambda event: None)

    def test_non_callable_subscriber_rejected(self):
        with pytest.raises(ExperimentError):
            MetricsBus().subscribe("not-callable")

    def test_subscriber_exception_propagates(self):
        bus = MetricsBus()

        def explode(event):
            raise RuntimeError("observer bug")

        bus.subscribe(explode)
        with pytest.raises(RuntimeError):
            bus.emit("round", "engine")


class TestEventLog:
    def test_collects_within_context(self):
        bus = MetricsBus()
        with EventLog(bus) as log:
            bus.emit("round", "engine", round_index=0)
            bus.emit("run_end", "engine")
        bus.emit("round", "engine", round_index=1)  # after detach
        assert log.kinds() == ["round", "run_end"]
        assert [event.round_index for event in log.of_kind("round")] == [0]

    def test_kind_filtered_log(self):
        bus = MetricsBus()
        with EventLog(bus, kinds=["audit_violation"]) as log:
            bus.emit("round", "engine")
            bus.emit("audit_violation", "auditor", invariant="flow")
        assert log.kinds() == ["audit_violation"]

    def test_detaches_on_exception(self):
        bus = MetricsBus()
        with pytest.raises(ValueError):
            with EventLog(bus):
                raise ValueError("boom")
        assert not bus.active


class TestConsoleSubscriber:
    def test_prints_formatted_lines(self):
        stream = io.StringIO()
        bus = MetricsBus()
        bus.subscribe(ConsoleSubscriber(stream=stream))
        bus.emit("round", "engine", round_index=2, max_min=3.0)
        line = stream.getvalue().strip()
        assert "[engine]" in line and "round" in line
        assert "round=2" in line and "max_min=3" in line

    def test_thins_round_events(self):
        stream = io.StringIO()
        bus = MetricsBus()
        bus.subscribe(ConsoleSubscriber(every=2, stream=stream))
        for index in range(4):
            bus.emit("round", "engine", round_index=index)
        bus.emit("run_end", "engine")  # never thinned
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 3  # every 2nd of 4 round events, plus run_end
