"""Tests for span tracing and Chrome-trace export (:mod:`repro.obs.trace`)."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import (
    EventLog,
    MetricsBus,
    Tracer,
    cell_trace_summary,
    validate_chrome_trace,
)
from repro.obs.kernels import active_kernel_clock
from repro.obs.trace import chrome_from_records, hot_kernel_rows
from repro.simulation.parallel import run_cells, sweep_cells
from repro.simulation.sweep import SweepConfiguration, run_sweep_cell
from repro.store.runstore import RunRecord

KNOWN_PHASES = {"continuous/advance", "flow/object-round", "flow/array-round",
                "flow/weighted-round", "baseline/excess-array"}


def small_config(algorithm="algorithm2"):
    return SweepConfiguration(algorithm=algorithm, topology="torus",
                              num_nodes=16, tokens_per_node=8,
                              rng_mode="counter")


def traced_serial_run(seed=3, **tracer_kwargs):
    bus = MetricsBus()
    tracer = Tracer(label="test", **tracer_kwargs).attach(bus)
    try:
        result = run_sweep_cell(small_config(), seed, bus=bus)
    finally:
        tracer.detach()
    return tracer, result


def spans(tracer, cat):
    return [event for event in tracer.trace_events
            if event.get("ph") == "X" and event.get("cat") == cat]


class TestTracerSerialRun:
    def test_trace_is_well_formed(self):
        tracer, _ = traced_serial_run()
        assert validate_chrome_trace(tracer.to_chrome()) == []

    def test_run_and_round_spans(self):
        tracer, result = traced_serial_run()
        run_spans = spans(tracer, "run")
        assert [span["name"] for span in run_spans] == ["run:algorithm2"]
        round_spans = spans(tracer, "round")
        assert len(round_spans) == result.rounds
        for span in round_spans:
            assert span["dur"] >= 0
            assert span["pid"] == os.getpid()

    def test_kernel_phase_child_spans(self):
        tracer, result = traced_serial_run()
        kernel_spans = spans(tracer, "kernel")
        assert kernel_spans
        assert {span["name"] for span in kernel_spans} <= KNOWN_PHASES
        # phase children never start before their round span
        round_starts = sorted(span["ts"] for span in spans(tracer, "round"))
        assert min(span["ts"] for span in kernel_spans) >= round_starts[0]

    def test_summary_aggregates(self):
        tracer, result = traced_serial_run()
        summary = tracer.summary()
        assert summary["rounds"] == result.rounds
        assert summary["spans"] >= result.rounds + 1
        assert summary["kernel_seconds"] >= 0
        assert summary["phases"]
        for stats in summary["phases"].values():
            assert stats["count"] == result.rounds
            assert stats["seconds"] >= 0

    def test_hot_kernels_ranked_by_total_seconds(self):
        tracer, _ = traced_serial_run()
        rows = tracer.hot_kernels(top=3)
        assert rows
        assert len(rows) <= 3
        totals = [row["total_seconds"] for row in rows]
        assert totals == sorted(totals, reverse=True)
        for row in rows:
            assert set(row) == {"kernel", "calls", "total_seconds", "mean_ms"}

    def test_tracing_does_not_change_the_trajectory(self):
        untraced = run_sweep_cell(small_config(), 3)
        _, traced = traced_serial_run(seed=3)
        assert traced.final_max_min == untraced.final_max_min
        assert traced.final_max_avg == untraced.final_max_avg
        assert traced.rounds == untraced.rounds
        assert traced.dummy_tokens == untraced.dummy_tokens

    def test_attach_twice_rejected_and_detach_releases_kernel_clock(self):
        bus = MetricsBus()
        tracer = Tracer().attach(bus)
        assert active_kernel_clock() is not None
        with pytest.raises(ValueError):
            tracer.attach(bus)
        tracer.detach()
        assert active_kernel_clock() is None

    def test_write_roundtrips_as_json(self, tmp_path):
        tracer, _ = traced_serial_run()
        path = tracer.write(tmp_path / "traces" / "out.json")
        trace = json.loads(path.read_text())
        assert validate_chrome_trace(trace) == []
        assert trace["otherData"]["tracer"] == "test"
        assert trace["otherData"]["rounds"] == tracer.summary()["rounds"]


class TestTracerShardedGrid:
    def run_traced_grid(self, workers=2, seeds=(1, 2, 3)):
        configurations = [small_config(), small_config("round-down")]
        cells = sweep_cells(configurations, list(seeds))
        bus = MetricsBus()
        tracer = Tracer(label="grid").attach(bus)
        try:
            outcomes = run_cells(cells, workers=workers, bus=bus)
        finally:
            tracer.detach()
        return tracer, cells, outcomes

    def test_one_pid_per_worker_one_tid_per_cell(self):
        tracer, cells, outcomes = self.run_traced_grid(workers=2)
        assert validate_chrome_trace(tracer.to_chrome()) == []
        cell_spans = spans(tracer, "cell")
        assert len(cell_spans) == len(cells)
        assert {span["tid"] for span in cell_spans} == set(range(len(cells)))
        worker_pids = {outcome.worker_pid for outcome in outcomes}
        assert {span["pid"] for span in cell_spans} == worker_pids
        # every worker that ran cells shows round spans in its lane
        round_pids = {span["pid"] for span in spans(tracer, "round")}
        assert round_pids == worker_pids

    def test_round_spans_cover_every_cell(self):
        tracer, cells, outcomes = self.run_traced_grid(workers=2)
        round_tids = {span["tid"] for span in spans(tracer, "round")}
        assert round_tids == set(range(len(cells)))
        assert tracer.summary()["rounds"] == \
            sum(outcome.result.rounds for outcome in outcomes)


class TestCellTraceSummary:
    def captured_events(self):
        cells = sweep_cells([small_config()], [7])
        bus = MetricsBus()
        with EventLog(bus):
            outcomes = run_cells(cells, workers=1, bus=bus)
        return outcomes[0]

    def test_summarises_rounds_phases_and_counters(self):
        outcome = self.captured_events()
        summary = cell_trace_summary(outcome.events)
        assert summary["events"] == len(outcome.events)
        assert summary["rounds"] == outcome.result.rounds
        assert summary["kernel_seconds"] >= 0
        assert summary["phases"]
        assert set(summary["phases"]) <= KNOWN_PHASES
        # JSON friendly: survives a dumps round-trip unchanged
        assert json.loads(json.dumps(summary)) == summary

    def test_empty_stream(self):
        summary = cell_trace_summary([])
        assert summary == {"events": 0, "rounds": 0, "kernel_seconds": 0.0,
                           "phases": {}}


class TestStoreRecordConversion:
    def make_records(self):
        def record(label, pid, seconds, phases, rounds):
            return RunRecord(
                label=label, kind="sweep", config={"label": label},
                timing={"seconds": seconds, "worker_pid": pid,
                        "trace": {"rounds": rounds,
                                  "kernel_seconds": sum(phases.values()) + 0.01,
                                  "phases": phases}})

        return [
            record("a", 100, 0.5, {"continuous/advance": 0.2,
                                   "flow/array-round": 0.1}, 10),
            record("b", 100, 0.25, {"continuous/advance": 0.05}, 5),
            record("c", 200, 0.75, {"flow/array-round": 0.6}, 20),
        ]

    def test_chrome_from_records_is_valid_and_sequential_per_worker(self):
        trace = chrome_from_records(self.make_records())
        assert validate_chrome_trace(trace) == []
        cell_spans = [event for event in trace["traceEvents"]
                      if event.get("cat") == "cell"]
        assert len(cell_spans) == 3
        assert {span["tid"] for span in cell_spans} == {0, 1, 2}
        # cells of one worker are laid out back to back
        by_pid = [span for span in cell_spans if span["pid"] == 100]
        assert by_pid[1]["ts"] == pytest.approx(by_pid[0]["ts"] + by_pid[0]["dur"])
        kernel_spans = [event for event in trace["traceEvents"]
                        if event.get("cat") == "kernel"]
        assert {span["name"] for span in kernel_spans} == \
            {"continuous/advance", "flow/array-round"}

    def test_hot_kernel_rows_aggregate_across_records(self):
        rows = hot_kernel_rows(self.make_records())
        by_name = {row["kernel"]: row for row in rows}
        assert by_name["flow/array-round"]["total_seconds"] == pytest.approx(0.7)
        assert by_name["flow/array-round"]["rounds"] == 30
        assert by_name["continuous/advance"]["total_seconds"] == pytest.approx(0.25)
        assert by_name["(unattributed round time)"]["total_seconds"] == \
            pytest.approx(0.03)
        totals = [row["total_seconds"] for row in rows]
        assert totals == sorted(totals, reverse=True)

    def test_hot_kernel_rows_top_limits_output(self):
        assert len(hot_kernel_rows(self.make_records(), top=1)) == 1

    def test_records_without_traces_are_harmless(self):
        record = RunRecord(label="bare", kind="sweep", config={},
                           timing={"seconds": 0.1, "worker_pid": 1})
        assert hot_kernel_rows([record]) == []
        assert validate_chrome_trace(chrome_from_records([record])) == []


class TestValidateChromeTrace:
    def test_missing_trace_events(self):
        assert validate_chrome_trace({}) == \
            ["traceEvents is missing or not a list"]

    def test_flags_malformed_events(self):
        trace = {"traceEvents": [
            "not an object",
            {"name": "no phase"},
            {"ph": "X", "name": "bad", "pid": "one", "tid": 0,
             "ts": 1.0, "dur": -2.0},
        ]}
        problems = validate_chrome_trace(trace)
        assert any("not an object" in problem for problem in problems)
        assert any("no phase" in problem for problem in problems)
        assert any("integer pid" in problem for problem in problems)
        assert any("non-negative dur" in problem for problem in problems)

    def test_metadata_events_are_exempt(self):
        trace = {"traceEvents": [{"ph": "M", "name": "process_name"}]}
        assert validate_chrome_trace(trace) == []
