"""Tests for the excess-token distribution strategies (random vs round-robin, [9] / [5])."""

from __future__ import annotations

import numpy as np
import pytest

from repro.discrete.baselines.diffusion import ExcessTokenDiffusion
from repro.exceptions import ProcessError
from repro.network import topologies
from repro.tasks.generators import point_load
from repro.tasks.load import max_min_discrepancy


class TestStrategies:
    def test_unknown_strategy_rejected(self):
        net = topologies.cycle(4)
        with pytest.raises(ProcessError):
            ExcessTokenDiffusion(net, [4, 0, 0, 0], strategy="fibonacci")

    @pytest.mark.parametrize("strategy", ExcessTokenDiffusion.STRATEGIES)
    def test_conservation_and_non_negativity(self, strategy):
        net = topologies.random_regular(20, 4, seed=1)
        loads = point_load(net, 20 * 32)
        balancer = ExcessTokenDiffusion(net, loads, seed=2, strategy=strategy)
        balancer.run(100)
        assert balancer.loads().sum() == pytest.approx(20.0 * 32)
        assert np.all(balancer.loads() >= 0)
        assert not balancer.went_negative

    @pytest.mark.parametrize("strategy", ExcessTokenDiffusion.STRATEGIES)
    def test_reaches_small_discrepancy(self, strategy):
        net = topologies.torus(5, dims=2)
        loads = point_load(net, 25 * 32)
        balancer = ExcessTokenDiffusion(net, loads, seed=3, strategy=strategy)
        balancer.run(150)
        assert max_min_discrepancy(balancer.loads(), net) <= 3 * net.max_degree

    def test_round_robin_is_deterministic_given_seed(self):
        """The round-robin variant only uses randomness for the starting offsets."""
        net = topologies.hypercube(4)
        loads = point_load(net, 16 * 16)
        a = ExcessTokenDiffusion(net, loads, seed=5, strategy="round-robin")
        b = ExcessTokenDiffusion(net, loads, seed=5, strategy="round-robin")
        a.run(30)
        b.run(30)
        np.testing.assert_array_equal(a.loads(), b.loads())

    def test_strategy_property(self):
        net = topologies.cycle(5)
        balancer = ExcessTokenDiffusion(net, [5, 0, 0, 0, 0], strategy="round-robin")
        assert balancer.strategy == "round-robin"

    def test_strategies_can_differ_in_trajectory(self):
        net = topologies.random_regular(16, 4, seed=7)
        loads = point_load(net, 16 * 32)
        random_variant = ExcessTokenDiffusion(net, loads, seed=9, strategy="random")
        round_robin = ExcessTokenDiffusion(net, loads, seed=9, strategy="round-robin")
        random_variant.run(20)
        round_robin.run(20)
        # Both conserve tokens; their intermediate states generally differ.
        assert random_variant.loads().sum() == round_robin.loads().sum()
