"""Tests for the discrete matching-model baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.discrete.baselines.matching import RandomizedRoundingMatching, RoundDownMatching
from repro.exceptions import ProcessError
from repro.network import topologies
from repro.network.matchings import (
    PeriodicMatchingSchedule,
    RandomMatchingSchedule,
    SingleMatchingSchedule,
)
from repro.tasks.generators import point_load
from repro.tasks.load import max_min_discrepancy


class TestRoundDownMatching:
    def test_single_edge_balances_down_to_one_token(self):
        net = topologies.path(2)
        schedule = SingleMatchingSchedule(net, [(0, 1)])
        balancer = RoundDownMatching(net, [9, 0], schedule)
        balancer.run(10)
        loads = balancer.loads()
        assert loads.sum() == 9
        assert abs(loads[0] - loads[1]) <= 1

    def test_periodic_convergence_on_hypercube(self):
        net = topologies.hypercube(4)
        schedule = PeriodicMatchingSchedule(net)
        loads = point_load(net, 16 * 32)
        balancer = RoundDownMatching(net, loads, schedule)
        balancer.run(400)
        assert max_min_discrepancy(balancer.loads(), net) <= 2 * net.max_degree
        assert not balancer.went_negative

    def test_random_matching_convergence(self):
        net = topologies.random_regular(20, 4, seed=1)
        schedule = RandomMatchingSchedule(net, seed=2)
        loads = point_load(net, 20 * 16)
        balancer = RoundDownMatching(net, loads, schedule)
        balancer.run(600)
        assert max_min_discrepancy(balancer.loads(), net) <= 3 * net.max_degree
        assert np.all(balancer.loads() >= 0)

    def test_respects_speeds(self):
        net = topologies.path(2).with_speeds([1, 3])
        schedule = SingleMatchingSchedule(net, [(0, 1)])
        balancer = RoundDownMatching(net, [8, 0], schedule)
        balancer.run(10)
        loads = balancer.loads()
        # Balanced allocation is (2, 6); round-down gets within one token.
        assert abs(loads[0] - 2) <= 1
        assert abs(loads[1] - 6) <= 1

    def test_conservation(self):
        net = topologies.torus(4, dims=2)
        schedule = PeriodicMatchingSchedule(net)
        balancer = RoundDownMatching(net, point_load(net, 161), schedule)
        balancer.run(100)
        assert balancer.loads().sum() == pytest.approx(161)


class TestRandomizedRoundingMatching:
    def test_invalid_probability_rule(self):
        net = topologies.cycle(4)
        schedule = PeriodicMatchingSchedule(net)
        with pytest.raises(ProcessError):
            RandomizedRoundingMatching(net, [4, 0, 0, 0], schedule, probability="maybe")

    @pytest.mark.parametrize("rule", ["half", "fractional"])
    def test_conservation(self, rule):
        net = topologies.hypercube(3)
        schedule = PeriodicMatchingSchedule(net)
        balancer = RandomizedRoundingMatching(net, point_load(net, 99), schedule,
                                              probability=rule, seed=3)
        balancer.run(120)
        assert balancer.loads().sum() == pytest.approx(99)

    @pytest.mark.parametrize("rule", ["half", "fractional"])
    def test_reaches_small_discrepancy(self, rule):
        net = topologies.random_regular(16, 4, seed=4)
        schedule = RandomMatchingSchedule(net, seed=5)
        loads = point_load(net, 16 * 32)
        balancer = RandomizedRoundingMatching(net, loads, schedule, probability=rule, seed=6)
        balancer.run(500)
        assert max_min_discrepancy(balancer.loads(), net) <= 2 * net.max_degree

    def test_seed_reproducibility(self):
        net = topologies.torus(4, dims=2)
        schedule = PeriodicMatchingSchedule(net)
        loads = point_load(net, 160)
        a = RandomizedRoundingMatching(net, loads, schedule, seed=7)
        b = RandomizedRoundingMatching(net, loads, schedule, seed=7)
        a.run(50)
        b.run(50)
        np.testing.assert_array_equal(a.loads(), b.loads())

    def test_probability_rule_exposed(self):
        net = topologies.cycle(4)
        schedule = PeriodicMatchingSchedule(net)
        balancer = RandomizedRoundingMatching(net, [4, 0, 0, 0], schedule,
                                              probability="fractional", seed=0)
        assert balancer.probability_rule == "fractional"


class TestScheduleValidation:
    def test_network_mismatch_rejected(self):
        net_a = topologies.cycle(6)
        net_b = topologies.cycle(6)
        schedule = PeriodicMatchingSchedule(net_a)
        with pytest.raises(ProcessError):
            RoundDownMatching(net_b, [6] * 6, schedule)
