"""Unit tests for :mod:`repro.discrete.base`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.discrete.base import IntegerLoadBalancer
from repro.exceptions import ProcessError
from repro.network import topologies


class NullBalancer(IntegerLoadBalancer):
    """A do-nothing discrete process used to test the base class plumbing."""

    def _execute_round(self) -> None:
        pass


class ShiftBalancer(IntegerLoadBalancer):
    """Moves one token from node 0 to node 1 every round (for move bookkeeping tests)."""

    def _execute_round(self) -> None:
        self._apply_edge_moves([(0, 1, 1)])


class TestIntegerLoadBalancer:
    def test_initial_load_validation(self):
        net = topologies.cycle(4)
        with pytest.raises(ProcessError):
            NullBalancer(net, [1, 2, 3])
        with pytest.raises(ProcessError):
            NullBalancer(net, [1, -2, 3, 4])
        with pytest.raises(ProcessError):
            NullBalancer(net, [1.5, 2, 3, 4])

    def test_round_counter_and_run(self):
        net = topologies.cycle(4)
        balancer = NullBalancer(net, [1, 2, 3, 4])
        balancer.run(7)
        assert balancer.round_index == 7
        with pytest.raises(ProcessError):
            balancer.run(-1)

    def test_loads_are_floats_and_copies(self):
        net = topologies.cycle(4)
        balancer = NullBalancer(net, [1, 2, 3, 4])
        loads = balancer.loads()
        loads[0] = 99
        np.testing.assert_array_equal(balancer.loads(), [1, 2, 3, 4])

    def test_negative_load_flag(self):
        net = topologies.cycle(4)
        balancer = ShiftBalancer(net, [1, 0, 0, 0])
        balancer.advance()
        assert not balancer.went_negative
        balancer.advance()
        assert balancer.went_negative
        assert balancer.loads()[0] == -1

    def test_negative_move_rejected(self):
        net = topologies.cycle(4)
        balancer = NullBalancer(net, [1, 1, 1, 1])
        with pytest.raises(ProcessError):
            balancer._apply_edge_moves([(0, 1, -1)])

    def test_summary_and_discrepancies(self):
        net = topologies.cycle(4)
        balancer = NullBalancer(net, [4, 0, 0, 0])
        assert balancer.max_min_discrepancy() == 4.0
        assert balancer.max_avg_discrepancy() == 3.0
        assert balancer.total_weight() == 4.0
        summary = balancer.summary()
        assert summary.max_makespan == 4.0

    def test_initial_loads_copy(self):
        net = topologies.cycle(4)
        balancer = ShiftBalancer(net, [2, 0, 0, 0])
        balancer.run(2)
        np.testing.assert_array_equal(balancer.initial_loads, [2, 0, 0, 0])
