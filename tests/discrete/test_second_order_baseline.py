"""Tests for the discrete second-order round-down baseline ([18], Section 2.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.discrete.baselines.diffusion import RoundDownDiffusion, RoundDownSecondOrder
from repro.exceptions import ProcessError
from repro.network import topologies
from repro.tasks.generators import point_load
from repro.tasks.load import max_min_discrepancy


class TestConstruction:
    def test_default_beta_in_range(self):
        net = topologies.cycle(16)
        balancer = RoundDownSecondOrder(net, point_load(net, 64))
        assert 1.0 <= balancer.beta <= 2.0

    def test_explicit_beta(self):
        net = topologies.cycle(8)
        balancer = RoundDownSecondOrder(net, [8] * 8, beta=1.3)
        assert balancer.beta == 1.3

    def test_invalid_beta(self):
        net = topologies.cycle(8)
        with pytest.raises(ProcessError):
            RoundDownSecondOrder(net, [8] * 8, beta=2.5)


class TestDynamics:
    def test_beta_one_matches_first_order_round_down(self):
        net = topologies.torus(4, dims=2)
        loads = point_load(net, 320)
        second = RoundDownSecondOrder(net, loads, beta=1.0)
        first = RoundDownDiffusion(net, loads)
        second.run(15)
        first.run(15)
        np.testing.assert_array_equal(second.loads(), first.loads())

    def test_conservation(self):
        net = topologies.hypercube(4)
        balancer = RoundDownSecondOrder(net, point_load(net, 333))
        balancer.run(50)
        assert balancer.loads().sum() == pytest.approx(333)

    def test_loads_stay_integer(self):
        net = topologies.random_regular(16, 4, seed=1)
        balancer = RoundDownSecondOrder(net, point_load(net, 160))
        balancer.run(30)
        final = balancer.loads()
        np.testing.assert_allclose(final, np.round(final))

    def test_balanced_input_stays_balanced(self):
        net = topologies.torus(4, dims=2)
        balancer = RoundDownSecondOrder(net, [12] * 16)
        balancer.run(10)
        np.testing.assert_array_equal(balancer.loads(), [12] * 16)

    def test_reduces_discrepancy_from_point_load(self):
        net = topologies.random_regular(24, 4, seed=2)
        loads = point_load(net, 24 * 32)
        balancer = RoundDownSecondOrder(net, loads)
        start = max_min_discrepancy(balancer.loads(), net)
        balancer.run(120)
        assert max_min_discrepancy(balancer.loads(), net) < start / 4

    def test_momentum_can_overdraw_nodes(self):
        """The SOS momentum may create negative load — the flag records it faithfully."""
        net = topologies.path(12)
        balancer = RoundDownSecondOrder(net, point_load(net, 2000, node=11), beta=1.95)
        balancer.run(100)
        assert isinstance(balancer.went_negative, bool)
        assert balancer.loads().sum() == pytest.approx(2000)
