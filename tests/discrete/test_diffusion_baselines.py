"""Tests for the discrete diffusion baselines (round-down, quasirandom, randomized, excess-token)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.discrete.baselines.diffusion import (
    ExcessTokenDiffusion,
    QuasirandomDiffusion,
    RandomizedRoundingDiffusion,
    RoundDownDiffusion,
)
from repro.exceptions import ProcessError
from repro.network import topologies
from repro.tasks.generators import point_load, uniform_random_load
from repro.tasks.load import max_min_discrepancy


ALL_BASELINES = {
    "round-down": lambda net, loads, seed: RoundDownDiffusion(net, loads),
    "quasirandom": lambda net, loads, seed: QuasirandomDiffusion(net, loads),
    "randomized": lambda net, loads, seed: RandomizedRoundingDiffusion(net, loads, seed=seed),
    "excess": lambda net, loads, seed: ExcessTokenDiffusion(net, loads, seed=seed),
}


class TestCommonInvariants:
    @pytest.mark.parametrize("name", sorted(ALL_BASELINES))
    def test_token_conservation(self, name):
        net = topologies.torus(5, dims=2)
        loads = point_load(net, 25 * 16)
        balancer = ALL_BASELINES[name](net, loads, 3)
        balancer.run(40)
        assert balancer.loads().sum() == pytest.approx(25.0 * 16)

    @pytest.mark.parametrize("name", sorted(ALL_BASELINES))
    def test_loads_stay_integer(self, name):
        net = topologies.hypercube(4)
        loads = uniform_random_load(net, 400, seed=1)
        balancer = ALL_BASELINES[name](net, loads, 5)
        balancer.run(25)
        final = balancer.loads()
        np.testing.assert_allclose(final, np.round(final))

    @pytest.mark.parametrize("name", sorted(ALL_BASELINES))
    def test_balanced_input_stays_balanced(self, name):
        net = topologies.torus(4, dims=2)
        loads = np.full(16, 20, dtype=int)
        balancer = ALL_BASELINES[name](net, loads, 7)
        balancer.run(15)
        np.testing.assert_array_equal(balancer.loads(), loads)

    @pytest.mark.parametrize("name", sorted(ALL_BASELINES))
    def test_discrepancy_decreases_from_point_load(self, name):
        net = topologies.random_regular(24, 4, seed=2)
        loads = point_load(net, 24 * 32)
        balancer = ALL_BASELINES[name](net, loads, 11)
        start = max_min_discrepancy(balancer.loads(), net)
        balancer.run(120)
        end = max_min_discrepancy(balancer.loads(), net)
        assert end < start / 4


class TestRoundDown:
    def test_never_negative(self):
        net = topologies.star(10)
        balancer = RoundDownDiffusion(net, point_load(net, 99))
        balancer.run(100)
        assert not balancer.went_negative
        assert np.all(balancer.loads() >= 0)

    def test_stuck_on_small_differences(self):
        """Round-down cannot fix a unit difference across an edge (the classic weakness)."""
        net = topologies.path(2)
        balancer = RoundDownDiffusion(net, [1, 0])
        balancer.run(10)
        np.testing.assert_array_equal(balancer.loads(), [1, 0])

    def test_final_discrepancy_grows_with_cycle_length(self):
        """The Omega(d * diam) behaviour: longer cycles end with larger discrepancy."""
        finals = {}
        for n in (8, 32):
            net = topologies.cycle(n)
            loads = point_load(net, 32 * n)
            balancer = RoundDownDiffusion(net, loads)
            balancer.run(40 * n)
            finals[n] = max_min_discrepancy(balancer.loads(), net)
        assert finals[32] > finals[8]


class TestQuasirandom:
    def test_accumulated_errors_bounded(self):
        """The bounded-error property: per-edge accumulated error stays below 1."""
        net = topologies.torus(4, dims=2)
        balancer = QuasirandomDiffusion(net, point_load(net, 160))
        balancer.run(60)
        assert np.all(np.abs(balancer.accumulated_errors) <= 1.0 + 1e-9)

    def test_beats_round_down_on_cycle(self):
        net = topologies.cycle(32)
        loads = point_load(net, 32 * 32)
        rd = RoundDownDiffusion(net, loads)
        qr = QuasirandomDiffusion(net, loads)
        rounds = 1500
        rd.run(rounds)
        qr.run(rounds)
        assert max_min_discrepancy(qr.loads(), net) < max_min_discrepancy(rd.loads(), net)

    def test_deterministic(self):
        net = topologies.hypercube(4)
        loads = uniform_random_load(net, 300, seed=2)
        a = QuasirandomDiffusion(net, loads)
        b = QuasirandomDiffusion(net, loads)
        a.run(20)
        b.run(20)
        np.testing.assert_array_equal(a.loads(), b.loads())


class TestRandomizedRounding:
    def test_seed_reproducibility(self):
        net = topologies.torus(4, dims=2)
        loads = point_load(net, 320)
        a = RandomizedRoundingDiffusion(net, loads, seed=9)
        b = RandomizedRoundingDiffusion(net, loads, seed=9)
        a.run(25)
        b.run(25)
        np.testing.assert_array_equal(a.loads(), b.loads())

    def test_may_go_negative_is_recorded(self):
        """Randomized rounding can overdraw a node; the flag records it if it happens."""
        net = topologies.star(12)
        balancer = RandomizedRoundingDiffusion(net, point_load(net, 30, node=3), seed=1)
        balancer.run(50)
        assert isinstance(balancer.went_negative, bool)


class TestExcessTokens:
    def test_never_negative(self):
        net = topologies.random_regular(20, 4, seed=3)
        balancer = ExcessTokenDiffusion(net, point_load(net, 777), seed=4)
        balancer.run(150)
        assert not balancer.went_negative
        assert np.all(balancer.loads() >= 0)

    def test_alphas_exposed(self):
        net = topologies.cycle(5)
        balancer = ExcessTokenDiffusion(net, [5, 0, 0, 0, 0], seed=0)
        assert set(balancer.alphas) == set(net.edges)


class TestValidation:
    def test_missing_alpha_rejected(self):
        net = topologies.cycle(4)
        with pytest.raises(ProcessError):
            RoundDownDiffusion(net, [4, 0, 0, 0], alphas={(0, 1): 0.3})
