"""Counter-based RNG for the excess-token baseline.

In ``rng_mode="counter"`` every per-node draw is a pure function of
``(seed, round, node, candidate-slot)`` — Philox keyed on ``(seed, round)``
with per-node score rows — so the draws are independent of the order nodes
are visited in, which is exactly what lets the columnar kernel batch the
whole round.  These tests pin down:

* determinism: same seed => same draws/trajectory, different seeds differ;
* order-freeness: visiting nodes in any order yields the same selections;
* bit-identity between the scalar counter-mode reference and the fully
  vectorised :class:`~repro.backend.baselines.ArrayExcessTokenDiffusion`;
* the engine/CLI plumbing (``rng_mode`` threading, backend recording);
* the clear-error satellite: non-integer loads raise instead of silently
  producing a wrong answer.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend.baselines import ArrayExcessTokenDiffusion
from repro.discrete.baselines.diffusion import RNG_MODES, ExcessTokenDiffusion
from repro.exceptions import ExperimentError, ProcessError
from repro.network import topologies
from repro.simulation.engine import make_balancer, run_algorithm
from repro.tasks.generators import point_load, uniform_random_load


def workload(network, seed=2):
    return uniform_random_load(network, 30 * network.num_nodes, seed=seed) \
        + point_load(network, 10 * network.num_nodes)


def trajectory(balancer, rounds):
    trace = []
    for _ in range(rounds):
        balancer.advance()
        trace.append(balancer.loads())
    return np.array(trace)


class TestCounterDeterminism:
    @pytest.mark.parametrize("strategy", sorted(ExcessTokenDiffusion.STRATEGIES))
    def test_same_seed_same_trajectory(self, strategy):
        network = topologies.torus(4, dims=2)
        load = workload(network)
        runs = [
            trajectory(ExcessTokenDiffusion(network, load, seed=11,
                                            rng_mode="counter", strategy=strategy), 30)
            for _ in range(2)
        ]
        assert np.array_equal(runs[0], runs[1])

    def test_different_seeds_differ(self):
        network = topologies.torus(4, dims=2)
        load = workload(network)
        a = trajectory(ExcessTokenDiffusion(network, load, seed=1,
                                            rng_mode="counter"), 30)
        b = trajectory(ExcessTokenDiffusion(network, load, seed=2,
                                            rng_mode="counter"), 30)
        assert not np.array_equal(a, b)

    def test_counter_and_sequential_are_distinct_processes(self):
        network = topologies.torus(4, dims=2)
        load = workload(network)
        counter = trajectory(ExcessTokenDiffusion(network, load, seed=1,
                                                  rng_mode="counter"), 30)
        sequential = trajectory(ExcessTokenDiffusion(network, load, seed=1), 30)
        assert not np.array_equal(counter, sequential)

    def test_unknown_rng_mode_rejected(self):
        network = topologies.cycle(5)
        with pytest.raises(ProcessError):
            ExcessTokenDiffusion(network, [2] * 5, rng_mode="quantum")
        with pytest.raises(ExperimentError):
            run_algorithm("excess-tokens", network, initial_load=[2] * 5,
                          rounds=3, rng_mode="quantum")
        assert RNG_MODES == ("sequential", "counter")


class TestOrderFreeDraws:
    def test_draws_identical_regardless_of_node_iteration_order(self):
        """Two references visiting nodes forward/backward select identically."""
        network = topologies.random_regular(20, 4, seed=3)
        load = workload(network)
        reference = ExcessTokenDiffusion(network, load, seed=5, rng_mode="counter")
        shuffled = ExcessTokenDiffusion(network, load, seed=5, rng_mode="counter")
        for round_index in range(5):
            scores_a = reference._counter_scores(round_index)
            scores_b = shuffled._counter_scores(round_index)
            assert np.array_equal(scores_a, scores_b)
            forward = {
                node: list(reference._counter_chosen(
                    node, len(network.neighbors(node)) + 1, 2, scores_a))
                for node in network.nodes
            }
            backward = {
                node: list(shuffled._counter_chosen(
                    node, len(network.neighbors(node)) + 1, 2, scores_b))
                for node in reversed(network.nodes)
            }
            for node in network.nodes:
                assert np.array_equal(forward[node], backward[node])

    @pytest.mark.parametrize("topology", ["torus", "random-regular", "ring"])
    @pytest.mark.parametrize("strategy", sorted(ExcessTokenDiffusion.STRATEGIES))
    def test_vectorized_kernel_bit_identical_to_scalar_reference(self, topology,
                                                                 strategy):
        network = {
            "torus": lambda: topologies.torus(4, dims=2),
            "random-regular": lambda: topologies.random_regular(30, 5, seed=4),
            "ring": lambda: topologies.cycle(12),
        }[topology]()
        load = workload(network)
        scalar = ExcessTokenDiffusion(network, load, seed=9, rng_mode="counter",
                                      strategy=strategy)
        vectorized = ArrayExcessTokenDiffusion(network, load, seed=9,
                                               strategy=strategy)
        for round_index in range(40):
            scalar.advance()
            vectorized.advance()
            assert np.array_equal(scalar.loads(), vectorized.loads()), (
                f"{topology}/{strategy} diverged at round {round_index}")
        assert scalar.went_negative == vectorized.went_negative

    def test_vectorized_kernel_requires_counter_mode(self):
        network = topologies.cycle(5)
        with pytest.raises(ProcessError):
            ArrayExcessTokenDiffusion(network, [2] * 5, rng_mode="sequential")


class TestEnginePlumbing:
    def test_counter_mode_selects_vectorized_kernel_on_array_backend(self):
        network = topologies.torus(4, dims=2)
        balancer = make_balancer("excess-tokens", network,
                                 initial_load=workload(network),
                                 seed=3, backend="array", rng_mode="counter")
        assert isinstance(balancer, ArrayExcessTokenDiffusion)
        sequential = make_balancer("excess-tokens", network,
                                   initial_load=workload(network),
                                   seed=3, backend="array")
        assert not isinstance(sequential, ArrayExcessTokenDiffusion)

    def test_run_algorithm_reports_scalar_fallback_reason(self):
        network = topologies.torus(4, dims=2)
        result = run_algorithm("excess-tokens", network,
                               initial_load=workload(network), rounds=5, seed=3)
        assert result.extra["backend"] == "array"
        assert "counter" in result.extra["backend_reason"]
        counter = run_algorithm("excess-tokens", network,
                                initial_load=workload(network), rounds=5, seed=3,
                                rng_mode="counter")
        assert counter.extra["backend"] == "array"

    def test_counter_recouple_equals_fresh_build(self):
        network = topologies.torus(4, dims=2)
        first = workload(network, seed=0)
        second = workload(network, seed=1)
        recoupled = make_balancer("excess-tokens", network, initial_load=first,
                                  seed=5, backend="array", rng_mode="counter")
        recoupled.run(10)
        recoupled.recouple(second, seed=77)
        fresh = make_balancer("excess-tokens", network, initial_load=second,
                              seed=77, backend="array", rng_mode="counter")
        assert np.array_equal(trajectory(recoupled, 15), trajectory(fresh, 15))

    def test_counter_streams_match_across_backends(self):
        from repro.dynamic.events import make_event_generator
        from repro.dynamic.stream import run_stream

        def one(backend):
            network = topologies.torus(4, dims=2)
            load = uniform_random_load(network, 6 * network.num_nodes, seed=17)
            generator = make_event_generator("burst", network, 6, seed=17)
            return run_stream("excess-tokens", network, load, generator,
                              rounds=50, seed=17, backend=backend,
                              rng_mode="counter")

        object_result, array_result = one("object"), one("array")
        assert object_result.trace_max_min == array_result.trace_max_min
        assert object_result.trace_total_weight == array_result.trace_total_weight


class TestNonIntegerLoadValidation:
    """Satellite: a clear error instead of a silently rounded workload."""

    def test_direct_construction_rejects_fractional_loads(self):
        network = topologies.cycle(4)
        with pytest.raises(ProcessError, match="integer token loads"):
            ExcessTokenDiffusion(network, [1.5, 0, 0, 0])

    def test_engine_no_longer_silently_rounds(self):
        network = topologies.cycle(4)
        with pytest.raises(ExperimentError, match="integer token loads"):
            run_algorithm("excess-tokens", network, initial_load=[1.5, 0, 0, 0],
                          rounds=3)
        for baseline in ("round-down", "quasirandom", "randomized-rounding"):
            with pytest.raises(ExperimentError, match="integer token loads"):
                run_algorithm(baseline, network, initial_load=[0.25, 1, 1, 1],
                              rounds=3)

    def test_negative_loads_rejected(self):
        network = topologies.cycle(4)
        with pytest.raises(ProcessError, match="non-negative"):
            ExcessTokenDiffusion(network, [-1, 2, 2, 2])
