"""Tests for the two-phase random-walk baseline (Section 2.3, random walk approach)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.discrete.baselines.random_walk import (
    RandomWalkFineBalancer,
    TwoPhaseRandomWalkBalancer,
)
from repro.exceptions import ProcessError
from repro.network import topologies
from repro.tasks.generators import point_load, uniform_random_load
from repro.tasks.load import max_min_discrepancy


class TestFineBalancer:
    def test_token_classification(self):
        net = topologies.cycle(4)
        balancer = RandomWalkFineBalancer(net, [10, 2, 2, 2], threshold=1, seed=1)
        # Average is 4: node 0 has 10 > 5 -> 5 positive tokens; nodes 1-3 have 2 < 4 -> 2 holes each.
        assert balancer.positive_tokens[0] == 5
        np.testing.assert_array_equal(balancer.negative_tokens[1:], [2, 2, 2])

    def test_balanced_input_has_no_tokens(self):
        net = topologies.torus(4, dims=2)
        balancer = RandomWalkFineBalancer(net, [7] * 16, threshold=1, seed=2)
        assert balancer.unmatched_tokens == 0

    def test_conservation(self):
        net = topologies.hypercube(3)
        loads = uniform_random_load(net, 120, seed=3)
        balancer = RandomWalkFineBalancer(net, loads, seed=4)
        balancer.run(60)
        assert balancer.loads().sum() == pytest.approx(120.0)

    def test_annihilation_reduces_tokens(self):
        net = topologies.random_regular(16, 4, seed=5)
        loads = point_load(net, 64) + 4
        balancer = RandomWalkFineBalancer(net, loads, seed=6)
        before = balancer.unmatched_tokens
        balancer.run_until_matched(max_rounds=5_000)
        assert balancer.unmatched_tokens < before

    def test_negative_threshold_rejected(self):
        net = topologies.cycle(4)
        with pytest.raises(ProcessError):
            RandomWalkFineBalancer(net, [4, 0, 0, 0], threshold=-1)

    def test_seed_reproducibility(self):
        net = topologies.torus(4, dims=2)
        loads = point_load(net, 80) + 2
        a = RandomWalkFineBalancer(net, loads, seed=9)
        b = RandomWalkFineBalancer(net, loads, seed=9)
        a.run(30)
        b.run(30)
        np.testing.assert_array_equal(a.loads(), b.loads())


class TestTwoPhase:
    def test_improves_on_point_load(self):
        net = topologies.random_regular(24, 4, seed=7)
        loads = point_load(net, 24 * 16)
        balancer = TwoPhaseRandomWalkBalancer(net, loads, phase1_rounds=60, seed=8)
        start = max_min_discrepancy(balancer.loads(), net)
        balancer.run(200)
        assert balancer.in_fine_phase
        end = max_min_discrepancy(balancer.loads(), net)
        assert end < start / 8

    def test_phase_switch_after_budget(self):
        net = topologies.torus(4, dims=2)
        balancer = TwoPhaseRandomWalkBalancer(net, point_load(net, 160),
                                              phase1_rounds=5, seed=1)
        balancer.run(5)
        assert not balancer.in_fine_phase
        balancer.run(1)
        assert balancer.in_fine_phase

    def test_default_phase1_budget_used_when_not_given(self):
        net = topologies.hypercube(3)
        balancer = TwoPhaseRandomWalkBalancer(net, point_load(net, 80), seed=2)
        balancer.run(100)
        assert balancer.in_fine_phase

    def test_conservation(self):
        net = topologies.hypercube(4)
        balancer = TwoPhaseRandomWalkBalancer(net, point_load(net, 321),
                                              phase1_rounds=20, seed=3)
        balancer.run(150)
        assert balancer.loads().sum() == pytest.approx(321.0)

    def test_negative_phase1_rounds_rejected(self):
        net = topologies.cycle(4)
        with pytest.raises(ProcessError):
            TwoPhaseRandomWalkBalancer(net, [4, 0, 0, 0], phase1_rounds=-1)
