"""Tests for the exception hierarchy and the public package surface."""

from __future__ import annotations

import repro
from repro import exceptions


class TestHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in ("NetworkError", "TopologyError", "TaskError", "ProcessError",
                     "NegativeLoadError", "ConvergenceError", "ScheduleError",
                     "ExperimentError"):
            error_type = getattr(exceptions, name)
            assert issubclass(error_type, exceptions.ReproError)

    def test_specialisations(self):
        assert issubclass(exceptions.TopologyError, exceptions.NetworkError)
        assert issubclass(exceptions.NegativeLoadError, exceptions.ProcessError)
        assert issubclass(exceptions.ConvergenceError, exceptions.ProcessError)
        assert issubclass(exceptions.ScheduleError, exceptions.ProcessError)


class TestPublicApi:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolvable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_key_classes_exported(self):
        assert repro.DeterministicFlowImitation is not None
        assert repro.RandomizedFlowImitation is not None
        assert repro.FirstOrderDiffusion is not None
        assert callable(repro.run_algorithm)
