"""Tests for the simulation engine registry (:mod:`repro.simulation.engine`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.continuous.dimension_exchange import DimensionExchange
from repro.continuous.fos import FirstOrderDiffusion
from repro.continuous.sos import SecondOrderDiffusion
from repro.exceptions import ExperimentError
from repro.network import topologies
from repro.simulation.engine import (
    compare_algorithms,
    determine_balancing_time,
    make_continuous,
    make_schedule,
    run_algorithm,
)
from repro.tasks.generators import point_load, weighted_assignment


@pytest.fixture
def torus():
    return topologies.torus(4, dims=2)


@pytest.fixture
def load(torus):
    return point_load(torus, 16 * 16)


class TestFactories:
    def test_make_continuous_kinds(self, torus, load):
        assert isinstance(make_continuous("fos", torus, load), FirstOrderDiffusion)
        assert isinstance(make_continuous("sos", torus, load), SecondOrderDiffusion)
        assert isinstance(make_continuous("periodic-matching", torus, load), DimensionExchange)
        assert isinstance(make_continuous("random-matching", torus, load, seed=1), DimensionExchange)

    def test_make_continuous_unknown_kind(self, torus, load):
        with pytest.raises(ExperimentError):
            make_continuous("teleport", torus, load)

    def test_make_schedule(self, torus):
        assert make_schedule("fos", torus) is None
        assert make_schedule("periodic-matching", torus) is not None
        assert make_schedule("random-matching", torus, seed=1) is not None

    def test_determine_balancing_time_positive(self, torus, load):
        T = determine_balancing_time(torus, load, "fos")
        assert T > 0

    def test_sos_balances_no_slower_than_fos_on_cycle(self):
        net = topologies.cycle(24)
        load = point_load(net, 24 * 32)
        t_fos = determine_balancing_time(net, load, "fos")
        t_sos = determine_balancing_time(net, load, "sos")
        assert t_sos <= t_fos


class TestRunAlgorithm:
    @pytest.mark.parametrize("algorithm", ["algorithm1", "algorithm2", "round-down",
                                           "quasirandom", "randomized-rounding",
                                           "excess-tokens"])
    def test_diffusion_algorithms_run(self, torus, load, algorithm):
        result = run_algorithm(algorithm, torus, initial_load=load, seed=1)
        assert result.algorithm == algorithm
        assert result.rounds > 0
        assert result.final_max_min >= 0
        assert result.num_nodes == 16

    @pytest.mark.parametrize("algorithm", ["matching-round-down", "matching-randomized",
                                           "algorithm1", "algorithm2"])
    @pytest.mark.parametrize("kind", ["periodic-matching", "random-matching"])
    def test_matching_algorithms_run(self, torus, load, algorithm, kind):
        result = run_algorithm(algorithm, torus, initial_load=load,
                               continuous_kind=kind, seed=2)
        assert result.rounds > 0
        assert result.continuous_kind == kind

    def test_unknown_algorithm(self, torus, load):
        with pytest.raises(ExperimentError):
            run_algorithm("gossip", torus, initial_load=load)

    def test_requires_exactly_one_workload(self, torus, load):
        with pytest.raises(ExperimentError):
            run_algorithm("algorithm1", torus)
        assignment = weighted_assignment(torus, 10, placement="uniform", seed=1)
        with pytest.raises(ExperimentError):
            run_algorithm("algorithm1", torus, initial_load=load, assignment=assignment)

    def test_baseline_rejects_assignment(self, torus):
        assignment = weighted_assignment(torus, 10, placement="uniform", seed=1)
        with pytest.raises(ExperimentError):
            run_algorithm("round-down", torus, assignment=assignment)

    def test_baseline_rejects_wrong_model(self, torus, load):
        with pytest.raises(ExperimentError):
            run_algorithm("round-down", torus, initial_load=load,
                          continuous_kind="periodic-matching")
        with pytest.raises(ExperimentError):
            run_algorithm("matching-round-down", torus, initial_load=load,
                          continuous_kind="fos")

    def test_non_integer_load_rejected_for_tokens(self, torus):
        load = np.full(16, 1.5)
        with pytest.raises(ExperimentError):
            run_algorithm("algorithm1", torus, initial_load=load)

    def test_weighted_assignment_with_algorithm1(self, torus):
        assignment = weighted_assignment(torus, num_tasks=160, max_weight=3,
                                         placement="uniform", seed=4)
        result = run_algorithm("algorithm1", torus, assignment=assignment, seed=1)
        assert result.max_task_weight == assignment.max_task_weight()
        assert result.final_max_avg_no_dummies is not None

    def test_explicit_rounds_respected(self, torus, load):
        result = run_algorithm("round-down", torus, initial_load=load, rounds=5)
        assert result.rounds == 5

    def test_trace_recording(self, torus, load):
        result = run_algorithm("algorithm1", torus, initial_load=load,
                               rounds=10, record_trace=True)
        assert result.trace_max_min is not None
        assert len(result.trace_max_min) == 11  # initial state + 10 rounds
        assert result.trace_max_min[0] >= result.trace_max_min[-1]

    def test_result_as_dict_roundtrip(self, torus, load):
        result = run_algorithm("algorithm2", torus, initial_load=load, rounds=8, seed=3)
        row = result.as_dict()
        assert row["algorithm"] == "algorithm2"
        assert row["n"] == 16
        assert "max_min" in row and "max_avg" in row


class TestCompareAlgorithms:
    def test_all_runs_use_same_horizon(self, torus, load):
        results = compare_algorithms(torus, load, ["round-down", "algorithm1", "algorithm2"],
                                     seed=5)
        assert len({result.rounds for result in results}) == 1

    def test_matching_comparison_shares_schedule(self, torus, load):
        results = compare_algorithms(torus, load,
                                     ["matching-round-down", "algorithm1"],
                                     continuous_kind="random-matching", seed=6)
        assert len({result.rounds for result in results}) == 1

    def test_unknown_algorithm_rejected(self, torus, load):
        with pytest.raises(ExperimentError):
            compare_algorithms(torus, load, ["algorithm1", "warp-drive"])

    def test_explicit_rounds(self, torus, load):
        results = compare_algorithms(torus, load, ["round-down", "algorithm1"], rounds=7)
        assert all(result.rounds == 7 for result in results)

    def test_algorithm1_beats_round_down_on_cycle(self):
        """The headline comparison: flow imitation is n-independent, round-down is not."""
        net = topologies.cycle(24)
        load = point_load(net, 24 * 32)
        results = {r.algorithm: r for r in compare_algorithms(
            net, load, ["round-down", "algorithm1"], seed=3)}
        assert results["algorithm1"].final_max_min < results["round-down"].final_max_min
