"""Tests for the :class:`~repro.simulation.results.RunResult` record."""

from __future__ import annotations

from repro.simulation.results import RunResult


def make_result(**overrides) -> RunResult:
    defaults = dict(
        algorithm="algorithm1",
        continuous_kind="fos",
        network_name="torus-2d-8",
        num_nodes=64,
        max_degree=4,
        rounds=39,
        total_weight=2048.0,
        max_task_weight=1.0,
        final_max_min=8.0,
        final_max_avg=4.0,
    )
    defaults.update(overrides)
    return RunResult(**defaults)


class TestRunResult:
    def test_defaults(self):
        result = make_result()
        assert result.dummy_tokens == 0
        assert not result.used_infinite_source
        assert not result.went_negative
        assert result.trace_max_min is None
        assert result.extra == {}

    def test_as_dict_contains_core_fields(self):
        row = make_result().as_dict()
        assert row["algorithm"] == "algorithm1"
        assert row["network"] == "torus-2d-8"
        assert row["n"] == 64
        assert row["max_min"] == 8.0
        assert row["max_avg"] == 4.0
        assert row["rounds"] == 39

    def test_as_dict_merges_extra(self):
        result = make_result(extra={"spectral_gap": 0.12})
        row = result.as_dict()
        assert row["spectral_gap"] == 0.12

    def test_optional_fields_pass_through(self):
        result = make_result(final_max_min_no_dummies=7.0, dummy_tokens=3,
                             used_infinite_source=True)
        row = result.as_dict()
        assert row["max_min_no_dummies"] == 7.0
        assert row["dummy_tokens"] == 3
        assert row["used_infinite_source"] is True

    def test_extra_dicts_are_independent(self):
        first = make_result()
        second = make_result()
        first.extra["x"] = 1.0
        assert "x" not in second.extra

    def test_extra_collision_does_not_overwrite_base_columns(self):
        """An extra key that shadows a base column lands as ``extra_<key>``."""
        result = make_result(extra={"rounds": 999, "max_min": -1.0,
                                    "spectral_gap": 0.12})
        row = result.as_dict()
        assert row["rounds"] == 39  # the base column survives
        assert row["max_min"] == 8.0
        assert row["extra_rounds"] == 999  # the extra value is still visible
        assert row["extra_max_min"] == -1.0
        assert row["spectral_gap"] == 0.12  # non-colliding keys unprefixed
