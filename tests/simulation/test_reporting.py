"""Tests for CSV/JSON export and ASCII charts (:mod:`repro.simulation.reporting`)."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ExperimentError
from repro.simulation.reporting import (
    bar_chart,
    load_rows_from_csv,
    rows_to_csv,
    rows_to_json,
    sparkline,
    trace_chart,
)

ROWS = [
    {"algorithm": "round-down", "n": 16, "max_min": 8.0},
    {"algorithm": "algorithm1", "n": 16, "max_min": 4.0},
]


class TestCsv:
    def test_roundtrip(self, tmp_path):
        path = rows_to_csv(ROWS, tmp_path / "out.csv")
        assert path.exists()
        rows = load_rows_from_csv(path)
        assert len(rows) == 2
        assert rows[0]["algorithm"] == "round-down"
        assert float(rows[1]["max_min"]) == 4.0

    def test_column_selection(self, tmp_path):
        path = rows_to_csv(ROWS, tmp_path / "out.csv", columns=["algorithm"])
        rows = load_rows_from_csv(path)
        assert list(rows[0].keys()) == ["algorithm"]

    def test_creates_parent_directories(self, tmp_path):
        path = rows_to_csv(ROWS, tmp_path / "nested" / "dir" / "out.csv")
        assert path.exists()

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            rows_to_csv([], tmp_path / "out.csv")

    def test_missing_file_on_load(self, tmp_path):
        with pytest.raises(ExperimentError):
            load_rows_from_csv(tmp_path / "nope.csv")


class TestJson:
    def test_roundtrip(self, tmp_path):
        path = rows_to_json(ROWS, tmp_path / "out.json")
        data = json.loads(path.read_text())
        assert len(data) == 2
        assert data[1]["algorithm"] == "algorithm1"

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            rows_to_json([], tmp_path / "out.json")


class TestCharts:
    def test_bar_chart_scales_to_max(self):
        chart = bar_chart({"a": 10.0, "b": 5.0}, width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_bar_chart_title(self):
        chart = bar_chart({"a": 1.0}, title="final discrepancy")
        assert chart.splitlines()[0] == "final discrepancy"

    def test_bar_chart_validation(self):
        with pytest.raises(ExperimentError):
            bar_chart({})
        with pytest.raises(ExperimentError):
            bar_chart({"a": -1.0})

    def test_sparkline_length_and_extremes(self):
        line = sparkline([0, 1, 2, 3, 4])
        assert len(line) == 5
        assert line[0] == " "
        assert line[-1] == "@"

    def test_sparkline_all_zero(self):
        assert sparkline([0, 0, 0]) == "   "

    def test_sparkline_empty_rejected(self):
        with pytest.raises(ExperimentError):
            sparkline([])

    def test_trace_chart_downsamples(self):
        trace = list(range(200, 0, -1))
        chart = trace_chart({"round-down": trace, "algorithm1": trace[:50]}, width=30)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert all("|" in line for line in lines)
        # The rendered sparkline portion is down-sampled to the requested width.
        assert max(len(line) for line in lines) < 80

    def test_trace_chart_validation(self):
        with pytest.raises(ExperimentError):
            trace_chart({})
        with pytest.raises(ExperimentError):
            trace_chart({"x": []})


class TestCsvTypedRoundTrip:
    """load_rows_from_csv restores natural types, not just strings."""

    def test_round_trip_preserves_types(self, tmp_path):
        rows = [{"algorithm": "algorithm2", "n": 64, "max_min": 2.5,
                 "went_negative": False, "band": None, "label": "2x"},
                {"algorithm": "round-down", "n": 16, "max_min": 8.0,
                 "went_negative": True, "band": 10.0, "label": "10"}]
        path = rows_to_csv(rows, tmp_path / "typed.csv")
        loaded = load_rows_from_csv(path)
        assert loaded[0]["n"] == 64 and isinstance(loaded[0]["n"], int)
        assert loaded[0]["max_min"] == 2.5
        assert loaded[0]["went_negative"] is False
        assert loaded[1]["went_negative"] is True
        assert loaded[0]["band"] is None
        assert loaded[1]["band"] == 10.0
        assert loaded[0]["algorithm"] == "algorithm2"
        # numeric-looking strings become numbers (documented coercion limit)
        assert loaded[1]["label"] == 10

    def test_coerce_false_returns_raw_strings(self, tmp_path):
        rows = [{"n": 64, "max_min": 2.5}]
        path = rows_to_csv(rows, tmp_path / "raw.csv")
        loaded = load_rows_from_csv(path, coerce=False)
        assert loaded[0]["n"] == "64"
        assert loaded[0]["max_min"] == "2.5"

    def test_numeric_consumers_work_without_casts(self, tmp_path):
        rows = [{"seed": 1, "max_min": 4.0}, {"seed": 2, "max_min": 2.0}]
        path = rows_to_csv(rows, tmp_path / "metrics.csv")
        loaded = load_rows_from_csv(path)
        assert sum(row["max_min"] for row in loaded) == 6.0
