"""Tests for the shared workload registry (:mod:`repro.simulation.workloads`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network import topologies
from repro.simulation import scenario as scenario_module
from repro.simulation import sweep as sweep_module
from repro.simulation.scenario import Scenario
from repro.simulation.sweep import SweepConfiguration, run_sweep
from repro.simulation.workloads import WORKLOADS

EXPECTED_NAMES = {"point", "two-point", "uniform", "half-nodes", "gradient", "balanced"}


class TestSharedRegistry:
    def test_registry_names(self):
        assert set(WORKLOADS) == EXPECTED_NAMES

    def test_sweep_and_scenario_share_one_registry(self):
        """The two entry points must select from the same object — no drift."""
        assert sweep_module.WORKLOADS is WORKLOADS
        assert scenario_module._WORKLOADS is WORKLOADS

    @pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
    def test_every_workload_generates_integer_loads(self, name):
        network = topologies.torus(4, dims=2)
        load = WORKLOADS[name](network, 4, 7)
        load = np.asarray(load)
        assert load.shape == (network.num_nodes,)
        assert np.all(load >= 0)
        assert np.allclose(load, np.round(load))


class TestBothEntryPointsAcceptEveryName:
    @pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
    def test_sweep_accepts(self, name):
        config = SweepConfiguration(algorithm="algorithm1", topology="cycle",
                                    num_nodes=8, tokens_per_node=4, workload=name)
        result = run_sweep(config, seeds=[1])
        assert result.num_runs == 1

    @pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
    def test_scenario_accepts(self, name):
        scenario = Scenario(name=f"w-{name}", algorithm="algorithm1",
                            topology="cycle", num_nodes=8, tokens_per_node=4,
                            workload=name)
        network = scenario.build_network()
        assert scenario.build_load(network).shape == (network.num_nodes,)
