"""Tests for declarative scenarios (:mod:`repro.simulation.scenario`)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.simulation.scenario import (
    DynamicScenario,
    Scenario,
    load_scenario,
    run_dynamic_scenario,
    run_scenario,
)
from repro.simulation.seeding import PurposeSeeds


class TestScenarioValidation:
    def test_minimal_scenario(self):
        scenario = Scenario(name="demo", algorithm="algorithm1")
        assert scenario.topology == "torus"
        assert scenario.workload == "point"

    @pytest.mark.parametrize("field,value", [
        ("algorithm", "gossip"),
        ("continuous_kind", "teleport"),
        ("workload", "tsunami"),
        ("speed_profile", "warp"),
    ])
    def test_invalid_choices_rejected(self, field, value):
        keyword_arguments = {"algorithm": "algorithm1", field: value}
        with pytest.raises(ExperimentError):
            Scenario(name="bad", **keyword_arguments)

    def test_invalid_numbers_rejected(self):
        with pytest.raises(ExperimentError):
            Scenario(name="bad", algorithm="algorithm1", num_nodes=1)
        with pytest.raises(ExperimentError):
            Scenario(name="bad", algorithm="algorithm1", tokens_per_node=-1)
        with pytest.raises(ExperimentError):
            Scenario(name="bad", algorithm="algorithm1", rounds=-2)


class TestSerialisation:
    def test_dict_roundtrip(self):
        scenario = Scenario(name="demo", algorithm="algorithm2", topology="hypercube",
                            num_nodes=32, seed=9, base_load=4)
        clone = Scenario.from_dict(scenario.to_dict())
        assert clone == scenario

    def test_unknown_fields_rejected(self):
        with pytest.raises(ExperimentError):
            Scenario.from_dict({"name": "x", "algorithm": "algorithm1", "colour": "red"})

    def test_missing_required_fields_rejected(self):
        with pytest.raises(ExperimentError):
            Scenario.from_dict({"name": "x"})

    def test_json_roundtrip(self, tmp_path):
        scenario = Scenario(name="json-demo", algorithm="round-down", topology="cycle",
                            num_nodes=16, tokens_per_node=8, seed=3)
        path = scenario.to_json(tmp_path / "scenario.json")
        loaded = load_scenario(path)
        assert loaded == scenario

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ExperimentError):
            load_scenario(tmp_path / "nope.json")

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ExperimentError):
            load_scenario(path)

    def test_load_non_object(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ExperimentError):
            load_scenario(path)


class TestMaterialisation:
    def test_build_network_applies_speed_profile(self):
        scenario = Scenario(name="speeds", algorithm="algorithm1", topology="cycle",
                            num_nodes=12, speed_profile="power-of-two", seed=5)
        network = scenario.build_network()
        assert network.num_nodes == 12
        assert not network.has_uniform_speeds or np.all(network.speeds == 1)

    def test_build_load_includes_base_load(self):
        scenario = Scenario(name="base", algorithm="algorithm1", topology="cycle",
                            num_nodes=8, tokens_per_node=4, base_load=3, seed=1)
        network = scenario.build_network()
        load = scenario.build_load(network)
        assert load.sum() == 4 * 8 + 3 * network.total_speed

    def test_reproducible_given_seed(self):
        scenario = Scenario(name="repro", algorithm="algorithm2", topology="expander",
                            num_nodes=16, tokens_per_node=8, workload="uniform", seed=7)
        a = run_scenario(scenario)
        b = run_scenario(scenario)
        assert a.final_max_min == b.final_max_min
        assert a.rounds == b.rounds


class TestSeedingModes:
    def base(self, **overrides):
        keyword_arguments = dict(name="mode", algorithm="algorithm2",
                                 topology="expander", num_nodes=16,
                                 tokens_per_node=8, workload="uniform", seed=7)
        keyword_arguments.update(overrides)
        return Scenario(**keyword_arguments)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ExperimentError):
            self.base(seeding="quantum")

    def test_legacy_reuses_the_scenario_seed_everywhere(self):
        assert self.base()._purpose_seeds() == PurposeSeeds(7, 7, 7, 7, 7)

    def test_per_purpose_derives_independent_seeds(self):
        seeds = self.base(seeding="per-purpose")._purpose_seeds()
        values = [seeds.topology, seeds.workload, seeds.schedule,
                  seeds.algorithm, seeds.events]
        assert len(set(values)) == len(values)
        assert 7 not in values

    def test_per_purpose_decorrelates_workload_placement(self):
        legacy = self.base()
        per_purpose = self.base(seeding="per-purpose")
        network = legacy.build_network()
        assert not np.array_equal(legacy.build_load(network),
                                  per_purpose.build_load(network))

    def test_to_dict_omits_default_and_roundtrips(self):
        legacy = self.base()
        assert "seeding" not in legacy.to_dict()
        assert Scenario.from_dict(legacy.to_dict()) == legacy
        per_purpose = self.base(seeding="per-purpose")
        assert per_purpose.to_dict()["seeding"] == "per-purpose"
        assert Scenario.from_dict(per_purpose.to_dict()) == per_purpose

    def test_scenarios_run_under_both_modes(self):
        for mode in ("legacy", "per-purpose"):
            result = run_scenario(self.base(seeding=mode))
            assert result.rounds > 0

    def test_dynamic_events_purpose_decorrelates_arrivals(self):
        base = dict(name="dyn", algorithm="round-down", topology="cycle",
                    num_nodes=8, tokens_per_node=4, events="poisson",
                    rounds=40, seed=11)
        legacy = DynamicScenario(**base)
        per_purpose = DynamicScenario(**base, seeding="per-purpose")
        assert "seeding" not in legacy.to_dict()
        assert DynamicScenario.from_dict(per_purpose.to_dict()) == per_purpose
        a = run_dynamic_scenario(legacy)
        b = run_dynamic_scenario(per_purpose)
        assert a.event_timeline != b.event_timeline


class TestRunScenario:
    @pytest.mark.parametrize("algorithm", ["algorithm1", "algorithm2", "round-down"])
    def test_diffusion_scenarios(self, algorithm):
        scenario = Scenario(name="run", algorithm=algorithm, topology="torus",
                            num_nodes=16, tokens_per_node=8, seed=2)
        result = run_scenario(scenario)
        assert result.algorithm == algorithm
        assert result.rounds > 0

    def test_matching_scenario(self):
        scenario = Scenario(name="match", algorithm="matching-round-down",
                            topology="hypercube", num_nodes=16, tokens_per_node=8,
                            continuous_kind="random-matching", seed=4)
        result = run_scenario(scenario)
        assert result.continuous_kind == "random-matching"

    def test_heterogeneous_scenario(self):
        scenario = Scenario(name="hetero", algorithm="algorithm1", topology="expander",
                            num_nodes=16, tokens_per_node=8, speed_profile="random",
                            base_load=4, seed=6)
        result = run_scenario(scenario)
        assert result.final_max_min >= 0

    def test_fixed_rounds_scenario(self):
        scenario = Scenario(name="short", algorithm="round-down", topology="cycle",
                            num_nodes=8, tokens_per_node=8, rounds=3, seed=1)
        result = run_scenario(scenario)
        assert result.rounds == 3
