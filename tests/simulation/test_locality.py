"""Tests for the task-locality analysis (:mod:`repro.simulation.locality`)."""

from __future__ import annotations

import pytest

from repro.continuous.fos import FirstOrderDiffusion
from repro.core.algorithm1 import DeterministicFlowImitation
from repro.exceptions import ExperimentError
from repro.network import topologies
from repro.simulation.locality import summarize_displacements, task_displacements
from repro.tasks.assignment import TaskAssignment
from repro.tasks.generators import balanced_load, point_load
from repro.tasks.task import TaskFactory


def assignment_with_origins(network, loads):
    factory = TaskFactory()
    assignment = TaskAssignment(network)
    for node, count in enumerate(loads):
        for task in factory.create_many(int(count), weight=1.0, origin=node):
            assignment.add(node, task)
    return assignment


class TestDisplacements:
    def test_unmoved_tasks_have_zero_displacement(self):
        net = topologies.cycle(6)
        assignment = assignment_with_origins(net, [2] * 6)
        displacements = task_displacements(assignment)
        assert displacements == [0] * 12

    def test_moved_task_distance(self):
        net = topologies.path(4)
        assignment = assignment_with_origins(net, [1, 0, 0, 0])
        task = assignment.tasks_at(0)[0]
        assignment.move(task, 0, 1)
        assignment.move(task, 1, 2)
        assert task_displacements(assignment) == [2]

    def test_tasks_without_origin_are_skipped(self):
        net = topologies.cycle(4)
        factory = TaskFactory()
        assignment = TaskAssignment(net)
        assignment.add(0, factory.create())  # no origin
        assert task_displacements(assignment) == []

    def test_dummies_excluded_by_default(self):
        net = topologies.cycle(4)
        factory = TaskFactory()
        assignment = TaskAssignment(net)
        assignment.add(0, factory.create_dummy(origin=2))
        assert task_displacements(assignment) == []
        assert task_displacements(assignment, include_dummies=True) == [2]


class TestSummary:
    def test_summary_statistics(self):
        net = topologies.path(5)
        assignment = assignment_with_origins(net, [3, 0, 0, 0, 0])
        tasks = list(assignment.tasks_at(0))
        assignment.move(tasks[0], 0, 1)
        assignment.move(tasks[1], 0, 1)
        assignment.move(tasks[1], 1, 2)
        summary = summarize_displacements(assignment)
        assert summary.tasks_measured == 3
        assert summary.maximum == 2
        assert summary.fraction_stationary == pytest.approx(1 / 3)
        assert summary.fraction_within_one_hop == pytest.approx(2 / 3)

    def test_empty_summary_rejected(self):
        net = topologies.cycle(4)
        assignment = TaskAssignment(net)
        with pytest.raises(ExperimentError):
            summarize_displacements(assignment)

    def test_as_dict_keys(self):
        net = topologies.cycle(4)
        assignment = assignment_with_origins(net, [1, 1, 1, 1])
        data = summarize_displacements(assignment).as_dict()
        assert {"tasks_measured", "mean", "median", "max",
                "fraction_stationary", "fraction_within_one_hop"} == set(data)


class TestLocalityOfAlgorithm1:
    def test_balanced_workload_barely_moves(self):
        """On an already balanced workload, flow imitation moves (almost) nothing."""
        net = topologies.torus(4, dims=2)
        assignment = assignment_with_origins(net, balanced_load(net, 8))
        continuous = FirstOrderDiffusion(net, assignment.loads())
        balancer = DeterministicFlowImitation(continuous, assignment)
        balancer.run(20)
        summary = summarize_displacements(balancer.assignment)
        assert summary.mean == pytest.approx(0.0)

    def test_point_load_tasks_spread_but_stay_finite(self):
        net = topologies.torus(5, dims=2)
        assignment = assignment_with_origins(net, point_load(net, 25 * 16))
        continuous = FirstOrderDiffusion(net, assignment.loads())
        balancer = DeterministicFlowImitation(continuous, assignment)
        balancer.run_until_continuous_balanced()
        summary = summarize_displacements(balancer.assignment)
        # Tokens must spread from the hot spot (mean displacement > 0) but can
        # never travel further than the diameter.
        assert summary.mean > 0
        assert summary.maximum <= net.diameter()
