"""Self-healing grid driver: retries, timeouts, crashes, graceful degradation.

The central invariant: because every grid cell is a pure function of its
picklable spec, a grid that survived injected faults (in-cell exceptions,
worker kills, timeouts) merges **bit-identically** to a fault-free grid —
and the relayed telemetry stream stays invariant under worker count and
retry count, since only successful attempts relay.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError, FaultInjected
from repro.faults import FaultPlan, random_fault_plan
from repro.obs.bus import MetricsBus
from repro.obs.progress import GridProgress
from repro.obs.relay import event_signature
from repro.simulation.parallel import (
    CellOutcome,
    GridCell,
    _backoff_delay,
    failed_cells,
    run_cells,
    timing_summary,
)
from repro.simulation.scenario import DynamicScenario


def _cells(count=5, rounds=24):
    return [
        GridCell(
            kind="dynamic",
            spec=DynamicScenario(
                name=f"ft-{index}", algorithm="randomized-rounding",
                topology="cycle", num_nodes=10, tokens_per_node=5,
                rounds=rounds, events="mixed", seed=50 + index,
                rng_mode="counter"),
            index=index)
        for index in range(count)
    ]


def _traces(outcomes):
    return [outcome.result.trace_max_min for outcome in outcomes
            if outcome.result is not None]


@pytest.fixture(scope="module")
def baseline():
    """Fault-free outcomes of the shared grid (serial, trusted path)."""
    return run_cells(_cells(), workers=1)


class TestRetries:
    def test_injected_raises_are_retried_bit_identically(self, baseline):
        bus = MetricsBus()
        events = []
        bus.subscribe(events.append)
        plan = FaultPlan(raise_at={1: 2, 3: 1})
        outcomes = run_cells(_cells(), workers=2, max_retries=3, faults=plan,
                             bus=bus, retry_backoff=0.01)
        assert _traces(outcomes) == _traces(baseline)
        assert [outcome.attempts for outcome in outcomes] == [1, 3, 1, 2, 1]
        retries = [event for event in events if event.kind == "cell_retry"]
        assert len(retries) == 3
        assert {event.payload["position"] for event in retries} == {1, 3}
        assert all(event.payload["failure_kind"] == "error"
                   for event in retries)

    def test_worker_kill_rebuilds_pool_bit_identically(self, baseline):
        plan = FaultPlan(kill_at={2: 1})
        outcomes = run_cells(_cells(), workers=2, max_retries=2, faults=plan,
                             retry_backoff=0.01)
        assert _traces(outcomes) == _traces(baseline)
        # the killed worker's in-flight cells were re-attempted
        assert max(outcome.attempts for outcome in outcomes) >= 2
        assert not failed_cells(outcomes)

    def test_timeout_kills_and_retries_bit_identically(self, baseline):
        plan = FaultPlan(delay_at={0: 8.0})  # first attempt only
        outcomes = run_cells(_cells(), workers=2, cell_timeout=1.0,
                             max_retries=1, faults=plan, retry_backoff=0.01)
        assert _traces(outcomes) == _traces(baseline)
        assert outcomes[0].attempts == 2
        assert outcomes[0].result is not None

    def test_serial_retry_path(self, baseline):
        plan = FaultPlan(raise_at={1: 2})
        outcomes = run_cells(_cells(), workers=1, max_retries=2, faults=plan,
                             retry_backoff=0.0)
        assert _traces(outcomes) == _traces(baseline)
        assert outcomes[1].attempts == 3
        assert outcomes[1].retry_seconds >= 0.0

    def test_random_fault_plan_campaign_recovers(self, baseline):
        plan = random_fault_plan(5, seed=3, raise_fraction=0.5)
        assert plan.positions()  # seed 3 draws at least one fault
        outcomes = run_cells(_cells(), workers=2, max_retries=1, faults=plan,
                             retry_backoff=0.0)
        assert _traces(outcomes) == _traces(baseline)

    def test_backoff_is_deterministic_and_exponential(self):
        first = _backoff_delay(0.1, position=4, attempt=1)
        again = _backoff_delay(0.1, position=4, attempt=1)
        assert first == again
        assert _backoff_delay(0.1, 4, 3) > _backoff_delay(0.1, 4, 1)
        assert _backoff_delay(0.0, 4, 1) == 0.0


class TestStrictness:
    def test_strict_reraises_original_error(self):
        plan = FaultPlan(raise_at={0: 99})
        with pytest.raises(FaultInjected):
            run_cells(_cells(2), workers=2, max_retries=1, faults=plan,
                      retry_backoff=0.0)

    def test_strict_is_the_default_without_fault_options(self):
        # no fault-tolerance knobs: the legacy chunked path, which raises
        plan = FaultPlan(raise_at={0: 99})
        with pytest.raises(FaultInjected):
            run_cells(_cells(2), workers=1, faults=plan)

    def test_non_strict_returns_partial_results(self, baseline):
        bus = MetricsBus()
        events = []
        bus.subscribe(events.append)
        plan = FaultPlan(raise_at={3: 99})
        outcomes = run_cells(_cells(), workers=2, max_retries=1, strict=False,
                             faults=plan, bus=bus, retry_backoff=0.0)
        assert len(outcomes) == 5
        failures = failed_cells(outcomes)
        assert [failure.position for failure in failures] == [3]
        assert failures[0].kind == "error"
        assert failures[0].attempts == 2
        assert "FaultInjected" in failures[0].error
        assert outcomes[3].result is None
        assert outcomes[3].worker_pid == -1
        surviving = [trace for position, trace
                     in enumerate(_traces(baseline)) if position != 3]
        assert _traces(outcomes) == surviving
        failed_events = [event for event in events
                         if event.kind == "cell_failed"]
        assert len(failed_events) == 1
        assert failed_events[0].payload["position"] == 3

    def test_invalid_options_rejected(self):
        with pytest.raises(ExperimentError):
            run_cells(_cells(2), workers=2, max_retries=-1)
        with pytest.raises(ExperimentError):
            run_cells(_cells(2), workers=2, cell_timeout=0.0)


class TestTelemetryInvariance:
    def _relayed_signatures(self, workers, faults=None, max_retries=0):
        bus = MetricsBus()
        events = []
        bus.subscribe(events.append)
        run_cells(_cells(3, rounds=12), workers=workers, bus=bus,
                  faults=faults, max_retries=max_retries, retry_backoff=0.0)
        return [event_signature(event) for event in events
                if "worker" in event.payload]

    def test_relayed_stream_invariant_under_retries_and_workers(self):
        """Retries never pollute the relay: only successful attempts ride."""
        clean = self._relayed_signatures(workers=2)
        plan = FaultPlan(raise_at={0: 1, 2: 2})
        for workers in (1, 2, 3):
            faulty = self._relayed_signatures(workers=workers, faults=plan,
                                              max_retries=3)
            assert faulty == clean, (
                f"relayed stream changed at workers={workers} under faults")

    def test_driver_side_retry_events_not_worker_tagged(self):
        bus = MetricsBus()
        events = []
        bus.subscribe(events.append)
        run_cells(_cells(3, rounds=12), workers=2,
                  faults=FaultPlan(raise_at={1: 1}), max_retries=1,
                  retry_backoff=0.0, bus=bus)
        retry_events = [event for event in events
                        if event.kind == "cell_retry"]
        assert retry_events
        assert all("worker" not in event.payload for event in retry_events)


class TestTimingAccounting:
    def test_retry_seconds_not_counted_as_busy(self):
        plan = FaultPlan(raise_at={1: 2})
        outcomes = run_cells(_cells(3, rounds=12), workers=2, max_retries=2,
                             faults=plan, retry_backoff=0.0)
        summary = timing_summary(outcomes, wall_seconds=1.0)
        assert summary["retries"] == 2
        assert summary["retry_seconds"] >= 0.0
        busy = sum(outcome.seconds for outcome in outcomes)
        assert summary["busy_seconds"] == round(busy, 4)
        assert "failed_cells" not in summary

    def test_no_retry_keys_on_clean_grids(self, baseline):
        summary = timing_summary(baseline, wall_seconds=1.0)
        assert "retries" not in summary
        assert "failed_cells" not in summary
        assert summary["cells"] == 5

    def test_failed_cells_counted_separately(self):
        plan = FaultPlan(raise_at={0: 99})
        outcomes = run_cells(_cells(3, rounds=12), workers=2, max_retries=0,
                             strict=False, faults=plan, retry_backoff=0.0)
        summary = timing_summary(outcomes)
        assert summary["failed_cells"] == 1
        assert summary["cells"] == 3
        # only the two successful cells contribute busy seconds
        assert summary["busy_seconds"] == round(
            sum(outcome.seconds for outcome in outcomes
                if outcome.result is not None), 4)

    def test_all_failed_summary_has_no_extremes(self):
        cell = _cells(1, rounds=4)[0]
        outcome = CellOutcome(cell=cell, result=None, seconds=0.0,
                              worker_pid=-1, attempts=1)
        summary = timing_summary([outcome])
        assert summary["busy_seconds"] == 0.0
        assert "max_cell_seconds" not in summary
        assert summary["failed_cells"] == 1


class TestGridProgress:
    def test_retry_and_failure_counters(self, capsys):
        import io

        stream = io.StringIO()
        progress = GridProgress(4, label="t", stream=stream)
        progress.update(worker_pid=1, seconds=0.5)
        progress.note_retry()
        progress.note_retry()
        progress.note_failure()
        line = progress.status_line()
        assert "2 retries" in line
        assert "1 failed" in line
        assert progress.done == 2  # one success + one permanent failure
        summary = progress.finish()
        assert "2 retries" in summary
        assert "1 cells failed" in summary

    def test_bus_subscription_counts_retry_events(self):
        import io

        from repro.obs.bus import TelemetryEvent

        progress = GridProgress(2, stream=io.StringIO())
        progress(TelemetryEvent(kind="cell_retry", source="parallel",
                                round_index=None, payload={}))
        progress(TelemetryEvent(kind="cell_failed", source="parallel",
                                round_index=None, payload={}))
        assert progress.retries == 1
        assert progress.failed == 1


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(raise_at={0: 0})
        with pytest.raises(ValueError):
            FaultPlan(delay_at={0: -1.0})

    def test_empty_plan_uses_fast_path(self, baseline):
        outcomes = run_cells(_cells(), workers=1, faults=FaultPlan())
        assert _traces(outcomes) == _traces(baseline)

    def test_random_plan_is_deterministic(self):
        assert random_fault_plan(20, seed=9, raise_fraction=0.3) == \
            random_fault_plan(20, seed=9, raise_fraction=0.3)
        assert random_fault_plan(20, seed=9, raise_fraction=0.3) != \
            random_fault_plan(20, seed=10, raise_fraction=0.3)
