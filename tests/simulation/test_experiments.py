"""Tests for the experiment harness (:mod:`repro.simulation.experiments`)."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.network import topologies
from repro.simulation.experiments import (
    DEFAULT_TABLE1_ALGORITHMS,
    DEFAULT_TABLE2_ALGORITHMS,
    continuous_convergence_rows,
    convergence_trace_rows,
    format_table,
    initial_load_condition_rows,
    scaling_in_n_rows,
    table1_graph_families,
    table1_rows,
    table2_rows,
    theorem3_rows,
    theorem8_rows,
)


class TestGraphFamilies:
    def test_small_families(self):
        families = table1_graph_families(size="small", seed=1)
        assert set(families) == {"arbitrary (geometric)", "expander (4-regular)",
                                 "hypercube", "torus (2d)"}
        assert all(net.is_connected() for net in families.values())

    def test_unknown_size(self):
        with pytest.raises(ExperimentError):
            table1_graph_families(size="galactic")


class TestTableRows:
    def test_table1_rows_structure(self):
        rows = table1_rows(size="small", algorithms=("round-down", "algorithm1"),
                           tokens_per_node=8, seed=3)
        assert len(rows) == 4 * 2  # four graph families, two algorithms
        for row in rows:
            assert {"graph", "n", "degree", "algorithm", "rounds",
                    "max_min", "max_avg"} <= set(row)
            assert row["max_min"] >= 0

    def test_table2_rows_structure(self):
        rows = table2_rows(size="small", algorithms=("matching-round-down", "algorithm1"),
                           matching_kind="periodic-matching", tokens_per_node=8, seed=3)
        assert len(rows) == 4 * 2
        assert all(row["matching_kind"] == "periodic-matching" for row in rows)

    def test_table2_invalid_matching_kind(self):
        with pytest.raises(ExperimentError):
            table2_rows(matching_kind="quantum-matching")

    def test_default_algorithm_lists(self):
        assert "algorithm1" in DEFAULT_TABLE1_ALGORITHMS
        assert "algorithm2" in DEFAULT_TABLE1_ALGORITHMS
        assert "matching-round-down" in DEFAULT_TABLE2_ALGORITHMS


class TestTheoremRows:
    def test_theorem3_rows_within_bound(self):
        rows = theorem3_rows(degrees=(3,), max_weights=(1, 2), num_nodes=16,
                             tasks_per_node=8, max_speed=2, seed=5)
        assert len(rows) == 2
        for row in rows:
            assert row["within_bound"]
            assert not row["used_infinite_source"]
            assert row["max_min"] <= row["bound"] + 1e-9

    def test_theorem8_rows_structure(self):
        rows = theorem8_rows(dimensions=(3, 4), tokens_per_node=16, seeds=(1, 2))
        assert len(rows) == 2
        for row in rows:
            assert row["max_min_worst"] >= row["max_min_mean"] - 1e-12
            assert not row["used_infinite_source"]


class TestFigureRows:
    def test_scaling_rows(self):
        rows = scaling_in_n_rows(family="cycle", sizes=(8, 16),
                                 algorithms=("round-down", "algorithm1"),
                                 tokens_per_node=8, seed=1)
        assert len(rows) == 4
        ns = sorted({row["n"] for row in rows})
        assert ns == [8, 16]

    def test_convergence_trace_rows(self):
        net = topologies.torus(4, dims=2)
        rows = convergence_trace_rows(net, algorithms=("round-down", "algorithm1"),
                                      tokens_per_node=8, seed=1)
        algorithms = {row["algorithm"] for row in rows}
        assert algorithms == {"round-down", "algorithm1"}
        # The trace starts at the point-load discrepancy and is recorded per round.
        first = [row for row in rows if row["round"] == 0]
        assert all(row["max_min"] == pytest.approx(8 * 16) for row in first)

    def test_continuous_convergence_rows(self):
        rows = continuous_convergence_rows(size="small", tokens_per_node=8, seed=2)
        kinds = {row["kind"] for row in rows}
        assert kinds == {"fos", "sos", "periodic-matching", "random-matching"}
        assert all(row["measured_T"] > 0 for row in rows)
        assert all(0 <= row["lambda"] < 1 for row in rows)

    def test_initial_load_condition_rows(self):
        rows = initial_load_condition_rows(base_levels=(0, 4), tokens_on_hotspot=64, seed=1)
        assert len(rows) == 2
        # At (or above) the required level the infinite source must stay unused.
        above = [row for row in rows if row["base_level"] >= row["required_level"]]
        assert all(not row["used_infinite_source"] for row in above)


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_alignment_and_floats(self):
        rows = [{"name": "a", "value": 1.23456, "flag": True},
                {"name": "bbbb", "value": 7.0, "flag": False}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.23" in text
        assert "yes" in text and "no" in text

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]
