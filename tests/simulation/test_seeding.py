"""Tests for per-purpose seed derivation (:mod:`repro.simulation.seeding`)."""

from __future__ import annotations

from repro.network import topologies
from repro.simulation.engine import run_algorithm
from repro.simulation.seeding import SEED_PURPOSES, PurposeSeeds, purpose_seeds
from repro.simulation.sweep import WORKLOADS, SweepConfiguration, run_sweep, run_sweep_cell


class TestPurposeSeeds:
    def test_deterministic(self):
        assert purpose_seeds(42) == purpose_seeds(42)

    def test_all_purposes_distinct(self):
        seeds = purpose_seeds(7)
        values = [getattr(seeds, purpose) for purpose in SEED_PURPOSES]
        assert len(set(values)) == len(SEED_PURPOSES)

    def test_different_run_seeds_share_nothing(self):
        a, b = purpose_seeds(1), purpose_seeds(2)
        values_a = {a.topology, a.workload, a.schedule, a.algorithm}
        values_b = {b.topology, b.workload, b.schedule, b.algorithm}
        assert not values_a & values_b

    def test_none_passes_through(self):
        seeds = purpose_seeds(None)
        assert seeds == PurposeSeeds(None, None, None, None, None)

    def test_legacy_reuses_the_integer(self):
        assert purpose_seeds(5, legacy=True) == PurposeSeeds(5, 5, 5, 5, 5)

    def test_extending_purposes_kept_existing_streams(self):
        """Adding the "events" purpose must not move the first four seeds.

        SeedSequence children are keyed by spawn index, so the derived
        topology/workload/schedule/algorithm seeds are pinned forever; this
        guards the recorded-trajectory replay contract across purpose-tuple
        extensions.
        """
        import numpy as np

        children = np.random.SeedSequence(9).spawn(4)
        expected = [int(child.generate_state(1, dtype=np.uint64)[0])
                    for child in children]
        seeds = purpose_seeds(9)
        assert [seeds.topology, seeds.workload,
                seeds.schedule, seeds.algorithm] == expected


class TestSweepSeeding:
    CONFIG = SweepConfiguration(algorithm="algorithm2", topology="expander",
                                num_nodes=16, tokens_per_node=8, workload="uniform")

    def test_legacy_seeding_reproduces_the_historical_composition(self):
        """``legacy_seeding=True`` must equal the old single-integer pipeline."""
        seed = 3
        run = run_sweep_cell(self.CONFIG, seed, legacy_seeding=True)
        network = topologies.named_topology(self.CONFIG.topology,
                                            self.CONFIG.num_nodes, seed=seed)
        load = WORKLOADS[self.CONFIG.workload](network,
                                               self.CONFIG.tokens_per_node, seed)
        reference = run_algorithm(self.CONFIG.algorithm, network,
                                  initial_load=load, seed=seed)
        assert run.final_max_min == reference.final_max_min
        assert run.rounds == reference.rounds

    def test_hygienic_seeding_changes_the_draws(self):
        legacy = run_sweep(self.CONFIG, seeds=[1, 2, 3, 4], legacy_seeding=True)
        hygienic = run_sweep(self.CONFIG, seeds=[1, 2, 3, 4])
        # Identical seeds, different component streams: at least one metric of
        # the four random runs should differ (same values would mean the flag
        # is a no-op).
        assert ([run.final_max_min for run in legacy.runs]
                != [run.final_max_min for run in hygienic.runs]
                or [run.rounds for run in legacy.runs]
                != [run.rounds for run in hygienic.runs])

    def test_hygienic_seeding_reproducible(self):
        a = run_sweep(self.CONFIG, seeds=[5, 6])
        b = run_sweep(self.CONFIG, seeds=[5, 6])
        assert [run.final_max_min for run in a.runs] == \
            [run.final_max_min for run in b.runs]

    def test_matching_schedule_gets_its_own_stream(self):
        config = SweepConfiguration(algorithm="matching-round-down",
                                    topology="hypercube", num_nodes=16,
                                    tokens_per_node=8,
                                    continuous_kind="random-matching")
        a = run_sweep(config, seeds=[1, 2])
        b = run_sweep(config, seeds=[1, 2])
        assert [run.final_max_min for run in a.runs] == \
            [run.final_max_min for run in b.runs]
