"""Tests for the multi-seed sweep harness (:mod:`repro.simulation.sweep`)."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.simulation.sweep import SweepConfiguration, grid_sweep, run_sweep


class TestConfiguration:
    def test_label_mentions_key_fields(self):
        config = SweepConfiguration(algorithm="algorithm1", topology="cycle", num_nodes=16)
        label = config.label()
        assert "algorithm1" in label and "cycle" in label

    def test_defaults(self):
        config = SweepConfiguration(algorithm="round-down")
        assert config.workload == "point"
        assert config.continuous_kind == "fos"


class TestRunSweep:
    def test_basic_sweep(self):
        config = SweepConfiguration(algorithm="algorithm1", topology="torus",
                                    num_nodes=16, tokens_per_node=8)
        result = run_sweep(config, seeds=[1, 2, 3])
        assert result.num_runs == 3
        stats = result.statistic("max_min")
        assert stats.count == 3
        assert stats.minimum >= 0

    def test_randomized_algorithm_varies_across_seeds(self):
        config = SweepConfiguration(algorithm="algorithm2", topology="torus",
                                    num_nodes=16, tokens_per_node=8, workload="uniform")
        result = run_sweep(config, seeds=[1, 2, 3, 4])
        assert result.statistic("max_min").maximum >= result.statistic("max_min").minimum

    def test_sweep_reproducible(self):
        config = SweepConfiguration(algorithm="algorithm2", topology="expander",
                                    num_nodes=16, tokens_per_node=8)
        a = run_sweep(config, seeds=[5, 6])
        b = run_sweep(config, seeds=[5, 6])
        assert [run.final_max_min for run in a.runs] == [run.final_max_min for run in b.runs]

    def test_as_row_fields(self):
        config = SweepConfiguration(algorithm="round-down", topology="cycle",
                                    num_nodes=8, tokens_per_node=8)
        result = run_sweep(config, seeds=[1])
        row = result.as_row()
        assert row["algorithm"] == "round-down"
        assert row["runs"] == 1
        assert "max_min_mean" in row and "rounds_mean" in row

    def test_matching_substrate_sweep(self):
        config = SweepConfiguration(algorithm="matching-round-down", topology="hypercube",
                                    num_nodes=16, tokens_per_node=8,
                                    continuous_kind="random-matching")
        result = run_sweep(config, seeds=[1, 2])
        assert result.num_runs == 2

    def test_unknown_metric(self):
        config = SweepConfiguration(algorithm="algorithm1", topology="cycle",
                                    num_nodes=8, tokens_per_node=4)
        result = run_sweep(config, seeds=[1])
        with pytest.raises(ExperimentError):
            result.statistic("latency")

    def test_validation_errors(self):
        with pytest.raises(ExperimentError):
            run_sweep(SweepConfiguration(algorithm="nonsense"), seeds=[1])
        with pytest.raises(ExperimentError):
            run_sweep(SweepConfiguration(algorithm="algorithm1", workload="tsunami"), seeds=[1])
        with pytest.raises(ExperimentError):
            run_sweep(SweepConfiguration(algorithm="algorithm1"), seeds=[])


class TestGridSweep:
    def test_cross_product(self):
        results = grid_sweep(
            algorithms=("round-down", "algorithm1"),
            topologies_and_sizes=(("cycle", 8), ("torus", 16)),
            seeds=[1],
            tokens_per_node=8,
        )
        assert len(results) == 4
        labels = {result.configuration.label() for result in results}
        assert len(labels) == 4
