"""Tests for the sharded process-pool grid driver (:mod:`repro.simulation.parallel`).

The load-bearing property is **worker-count invariance**: the same grid run
at ``workers=1``, ``2`` and ``4`` must produce bit-identical results — the
merge is deterministic and every run is a pure function of its (cell, seed)
spec.  For randomized algorithms this is checked in both ``rng_mode``s.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.simulation.parallel import (
    CellOutcome,
    GridCell,
    default_workers,
    parallel_dynamic_grid,
    parallel_grid_sweep,
    parallel_scenario_grid,
    parallel_sweep,
    run_cells,
    timing_summary,
)
from repro.simulation.scenario import (
    DynamicScenario,
    Scenario,
    expand_seeds,
    run_dynamic_grid,
    run_dynamic_scenario,
    run_scenario,
    run_scenario_grid,
)
from repro.simulation.sweep import SweepConfiguration, grid_sweep, run_sweep

WORKER_COUNTS = (1, 2, 4)


def small_config(rng_mode="sequential", algorithm="algorithm2"):
    return SweepConfiguration(algorithm=algorithm, topology="torus", num_nodes=16,
                              tokens_per_node=8, workload="uniform",
                              rng_mode=rng_mode)


def run_signature(run):
    """The comparable fingerprint of one run (trajectory included)."""
    return (run.final_max_min, run.final_max_avg, run.rounds, run.dummy_tokens,
            run.trace_max_min)


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("rng_mode", ["sequential", "counter"])
    def test_sweep_identical_across_worker_counts(self, rng_mode):
        config = small_config(rng_mode)
        seeds = [1, 2, 3, 4]
        results = [run_sweep(config, seeds, record_trace=True, workers=workers)
                   for workers in WORKER_COUNTS]
        rows = [result.as_row() for result in results]
        assert rows[0] == rows[1] == rows[2]
        signatures = [[run_signature(run) for run in result.runs]
                      for result in results]
        assert signatures[0] == signatures[1] == signatures[2]

    def test_grid_sweep_identical_across_worker_counts(self):
        kwargs = dict(
            algorithms=("round-down", "algorithm1"),
            topologies_and_sizes=(("cycle", 8), ("torus", 16)),
            seeds=[1, 2],
            tokens_per_node=8,
        )
        tables = []
        for workers in WORKER_COUNTS:
            results = grid_sweep(workers=workers, **kwargs)
            tables.append([result.as_row() for result in results])
        assert tables[0] == tables[1] == tables[2]

    @pytest.mark.parametrize("rng_mode", ["sequential", "counter"])
    def test_dynamic_trajectories_identical_across_worker_counts(self, rng_mode):
        base = DynamicScenario(name="inv", algorithm="algorithm2", topology="torus",
                               num_nodes=16, tokens_per_node=6, rounds=40,
                               rng_mode=rng_mode)
        scenarios = expand_seeds(base, [1, 2, 3, 4])
        serial = [run_dynamic_scenario(scenario) for scenario in scenarios]
        for workers in WORKER_COUNTS[1:]:
            sharded = run_dynamic_grid(scenarios, workers=workers)
            assert [r.trace_max_min for r in sharded] == \
                [r.trace_max_min for r in serial]
            assert [r.trace_total_weight for r in sharded] == \
                [r.trace_total_weight for r in serial]
            assert [r.event_timeline for r in sharded] == \
                [r.event_timeline for r in serial]

    def test_scenario_grid_matches_serial(self):
        scenarios = expand_seeds(
            Scenario(name="st", algorithm="algorithm1", topology="cycle",
                     num_nodes=8, tokens_per_node=8), [3, 4])
        serial = [run_scenario(scenario) for scenario in scenarios]
        sharded = run_scenario_grid(scenarios, workers=2)
        assert [r.final_max_min for r in sharded] == \
            [r.final_max_min for r in serial]


class TestRunCells:
    def make_cells(self, count=3):
        config = small_config()
        return [GridCell(kind="sweep", spec=config, index=0, seed=seed)
                for seed in range(count)]

    def test_outcomes_preserve_input_order_and_carry_timing(self):
        cells = self.make_cells(5)
        outcomes = run_cells(cells, workers=2)
        assert [outcome.cell.seed for outcome in outcomes] == [0, 1, 2, 3, 4]
        for outcome in outcomes:
            assert isinstance(outcome, CellOutcome)
            assert outcome.seconds > 0
            assert outcome.worker_pid > 0

    def test_empty_grid(self):
        assert run_cells([], workers=4) == []

    def test_workers_capped_by_cells(self):
        outcomes = run_cells(self.make_cells(2), workers=8)
        assert len(outcomes) == 2

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ExperimentError):
            run_cells(self.make_cells(2), workers=0)

    def test_unknown_cell_kind_rejected(self):
        with pytest.raises(ExperimentError):
            GridCell(kind="frobnicate", spec=small_config(), index=0)

    def test_explicit_chunksize(self):
        outcomes = run_cells(self.make_cells(4), workers=2, chunksize=2)
        assert [outcome.cell.seed for outcome in outcomes] == [0, 1, 2, 3]

    def test_default_workers_bounds(self):
        assert default_workers(0) == 1
        assert 1 <= default_workers(100) <= 100

    def test_timing_summary(self):
        outcomes = run_cells(self.make_cells(3), workers=1)
        summary = timing_summary(outcomes)
        assert summary["cells"] == 3
        assert summary["busy_seconds"] > 0
        assert summary["workers_used"] == 1
        assert "wall_seconds" not in summary
        assert timing_summary([])["cells"] == 0

    def test_timing_summary_reports_wall_clock_and_utilization(self):
        outcomes = run_cells(self.make_cells(3), workers=1)
        busy = sum(outcome.seconds for outcome in outcomes)
        summary = timing_summary(outcomes, wall_seconds=busy * 2)
        assert summary["wall_seconds"] == round(busy * 2, 4)
        # one worker kept busy for half the wall-clock
        assert summary["utilization"] == pytest.approx(0.5)
        assert timing_summary(outcomes, wall_seconds=0.0)["utilization"] == 0.0
        empty = timing_summary([], wall_seconds=1.5)
        assert empty["wall_seconds"] == 1.5
        assert empty["cells"] == 0


class TestParallelEntryPoints:
    def test_parallel_sweep_requires_seeds(self):
        with pytest.raises(ExperimentError):
            parallel_sweep(small_config(), seeds=[], workers=2)

    def test_parallel_grid_sweep_merges_per_configuration(self):
        configs = [small_config(), small_config(algorithm="algorithm1")]
        results = parallel_grid_sweep(configs, seeds=[1, 2, 3], workers=2)
        assert [result.configuration for result in results] == configs
        assert all(result.num_runs == 3 for result in results)

    def test_parallel_dynamic_grid_preserves_order(self):
        scenarios = expand_seeds(
            DynamicScenario(name="ord", algorithm="round-down", topology="cycle",
                            num_nodes=8, tokens_per_node=4, rounds=12), [9, 8, 7])
        results = parallel_dynamic_grid(scenarios, workers=2)
        assert len(results) == 3

    def test_parallel_scenario_grid_empty(self):
        assert parallel_scenario_grid([], workers=2) == []
