"""Tests for :mod:`repro.analysis.convergence`."""

from __future__ import annotations

import pytest

from repro.analysis.convergence import convergence_trace, measure_balancing_time
from repro.continuous.fos import FirstOrderDiffusion
from repro.continuous.sos import SecondOrderDiffusion
from repro.exceptions import ConvergenceError
from repro.network import topologies
from repro.network.spectral import predicted_fos_rounds
from repro.tasks.generators import point_load


class TestMeasureBalancingTime:
    def test_matches_process_round_index(self):
        net = topologies.torus(4, dims=2)
        process = FirstOrderDiffusion(net, point_load(net, 160).astype(float))
        T = measure_balancing_time(process)
        assert T == process.round_index
        assert process.is_balanced()

    def test_larger_initial_discrepancy_takes_longer(self):
        net = topologies.hypercube(4)
        small = FirstOrderDiffusion(net, point_load(net, 64).astype(float))
        large = FirstOrderDiffusion(net, point_load(net, 64_000).astype(float))
        assert measure_balancing_time(large) > measure_balancing_time(small)

    def test_measured_time_within_constant_of_prediction(self):
        """T = O(log(Kn) / (1 - lambda)): the measured time is below a small multiple."""
        net = topologies.torus(5, dims=2)
        load = point_load(net, 25 * 64).astype(float)
        predicted = predicted_fos_rounds(net, initial_discrepancy=float(load.max()))
        measured = measure_balancing_time(FirstOrderDiffusion(net, load))
        assert measured <= 10 * predicted

    def test_raises_when_max_rounds_too_small(self):
        net = topologies.cycle(40)
        process = FirstOrderDiffusion(net, point_load(net, 4000).astype(float))
        with pytest.raises(ConvergenceError):
            measure_balancing_time(process, max_rounds=2)


class TestConvergenceTrace:
    def test_trace_is_recorded_per_round(self):
        net = topologies.torus(4, dims=2)
        process = FirstOrderDiffusion(net, point_load(net, 160).astype(float))
        trace = convergence_trace(process, max_rounds=20, stop_when_balanced=False)
        assert trace.rounds == 20
        assert len(trace.max_deviation) == 21
        assert len(trace.potential) == 21

    def test_trace_stops_when_balanced(self):
        net = topologies.hypercube(3)
        process = FirstOrderDiffusion(net, point_load(net, 80).astype(float))
        trace = convergence_trace(process, max_rounds=10_000)
        assert trace.balanced_at is not None
        assert trace.rounds == trace.balanced_at

    def test_deviation_decreases_overall(self):
        net = topologies.random_regular(16, 4, seed=1)
        process = FirstOrderDiffusion(net, point_load(net, 800).astype(float))
        trace = convergence_trace(process, max_rounds=200)
        assert trace.max_deviation[-1] < trace.max_deviation[0]
        assert trace.potential[-1] < trace.potential[0]

    def test_balanced_start_trace(self):
        net = topologies.cycle(6)
        process = FirstOrderDiffusion(net, [5.0] * 6)
        trace = convergence_trace(process, max_rounds=5)
        assert trace.balanced_at == 0
        assert trace.rounds == 0

    def test_sos_trace_can_overshoot_but_converges(self):
        net = topologies.cycle(16)
        process = SecondOrderDiffusion(net, point_load(net, 16 * 32).astype(float))
        trace = convergence_trace(process, max_rounds=5_000)
        assert trace.balanced_at is not None

    def test_negative_max_rounds_rejected(self):
        net = topologies.cycle(6)
        process = FirstOrderDiffusion(net, [5.0] * 6)
        with pytest.raises(ConvergenceError):
            convergence_trace(process, max_rounds=-1)
