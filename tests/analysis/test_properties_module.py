"""Tests for the property-checking utilities themselves (:mod:`repro.analysis.properties`).

The Lemma 1 checks for the real processes live in
``tests/continuous/test_lemma1_properties.py``; here we verify that the
checkers correctly *detect violations* by feeding them deliberately broken
processes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.properties import (
    PropertyReport,
    is_additive,
    is_terminating,
    max_additivity_violation,
    max_termination_violation,
)
from repro.continuous.base import ContinuousProcess, RoundFlows
from repro.continuous.fos import FirstOrderDiffusion
from repro.exceptions import ProcessError
from repro.network import topologies


class NonAdditiveProcess(ContinuousProcess):
    """Sends sqrt(x_u) over every edge — deliberately not additive."""

    def _compute_flows(self) -> RoundFlows:
        flows = RoundFlows(self.network)
        sources, targets = self._edge_endpoint_arrays()
        flows.forward = 0.1 * np.sqrt(np.maximum(self._load[sources], 0.0))
        flows.backward = 0.1 * np.sqrt(np.maximum(self._load[targets], 0.0))
        return flows


class NonTerminatingProcess(ContinuousProcess):
    """Always sends one unit over every edge, even when balanced."""

    def _compute_flows(self) -> RoundFlows:
        flows = RoundFlows(self.network)
        flows.forward = np.ones(self.network.num_edges)
        return flows


class TestDetection:
    def test_detects_non_additive(self):
        net = topologies.cycle(6)
        factory = lambda load: NonAdditiveProcess(net, load)
        report = is_additive(factory, [9.0] * 6, [16.0] * 6, rounds=3)
        assert not report.holds
        assert report.max_violation > 0.01

    def test_detects_non_terminating(self):
        net = topologies.cycle(6)
        factory = lambda load: NonTerminatingProcess(net, load)
        report = is_terminating(factory, net, level=5.0, rounds=3)
        assert not report.holds

    def test_fos_passes_both(self):
        net = topologies.cycle(6)
        factory = lambda load: FirstOrderDiffusion(net, load)
        assert is_additive(factory, [3.0] * 6, [9.0, 0, 0, 0, 0, 0], rounds=5).holds
        assert is_terminating(factory, net, level=4.0, rounds=5).holds


class TestValidation:
    def test_rounds_must_be_positive(self):
        net = topologies.cycle(6)
        factory = lambda load: FirstOrderDiffusion(net, load)
        with pytest.raises(ProcessError):
            max_additivity_violation(factory, [1.0] * 6, [1.0] * 6, rounds=0)
        with pytest.raises(ProcessError):
            max_termination_violation(factory, net, level=1.0, rounds=0)

    def test_negative_level_rejected(self):
        net = topologies.cycle(6)
        factory = lambda load: FirstOrderDiffusion(net, load)
        with pytest.raises(ProcessError):
            max_termination_violation(factory, net, level=-1.0, rounds=2)

    def test_property_report_holds_respects_tolerance(self):
        report = PropertyReport("x", max_violation=0.5, tolerance=1.0)
        assert report.holds
        report2 = PropertyReport("x", max_violation=2.0, tolerance=1.0)
        assert not report2.holds
