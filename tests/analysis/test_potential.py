"""Tests for the potential-function analysis (:mod:`repro.analysis.potential`)."""

from __future__ import annotations

import pytest

from repro.analysis.potential import (
    estimate_drop_factor,
    muthukrishnan_threshold,
    track_potential,
)
from repro.continuous.fos import FirstOrderDiffusion
from repro.discrete.baselines.diffusion import RoundDownDiffusion
from repro.exceptions import ProcessError
from repro.network import topologies
from repro.network.spectral import diffusion_matrix, second_largest_eigenvalue
from repro.tasks.generators import point_load


class TestThreshold:
    def test_formula(self):
        net = topologies.torus(4, dims=2)  # d = 4, n = 16
        assert muthukrishnan_threshold(net, epsilon=0.5) == pytest.approx(
            16 * 16 * 256 / 0.25)

    def test_invalid_epsilon(self):
        net = topologies.cycle(4)
        with pytest.raises(ProcessError):
            muthukrishnan_threshold(net, epsilon=0.0)
        with pytest.raises(ProcessError):
            muthukrishnan_threshold(net, epsilon=1.5)


class TestContinuousPotentialDrop:
    def test_fos_potential_never_increases(self):
        net = topologies.hypercube(4)
        process = FirstOrderDiffusion(net, point_load(net, 16 * 64).astype(float))
        trace = track_potential(process, rounds=30)
        assert all(factor <= 1.0 + 1e-9 for factor in trace.drop_factors)
        assert trace.final < trace.initial

    def test_fos_drop_factor_at_most_lambda_squared(self):
        """[34]: the continuous FOS potential drops by at least lambda^2 per round."""
        net = topologies.random_regular(16, 4, seed=1)
        process = FirstOrderDiffusion(net, point_load(net, 16 * 128).astype(float))
        lam = second_largest_eigenvalue(diffusion_matrix(net, alphas=process.alphas))
        trace = track_potential(process, rounds=20)
        assert all(factor <= lam**2 + 1e-9 for factor in trace.drop_factors)

    def test_trace_bookkeeping(self):
        net = topologies.torus(4, dims=2)
        process = FirstOrderDiffusion(net, point_load(net, 160).astype(float))
        trace = track_potential(process, rounds=10)
        assert len(trace.values) == 11
        assert len(trace.drop_factors) == 10
        assert trace.total_reduction >= 1.0

    def test_zero_rounds(self):
        net = topologies.cycle(5)
        process = FirstOrderDiffusion(net, [5.0, 0, 0, 0, 0])
        trace = track_potential(process, rounds=0)
        assert len(trace.values) == 1
        assert trace.drop_factors == []

    def test_negative_rounds_rejected(self):
        net = topologies.cycle(5)
        process = FirstOrderDiffusion(net, [5.0, 0, 0, 0, 0])
        with pytest.raises(ProcessError):
            track_potential(process, rounds=-1)


class TestDiscretePotential:
    def test_round_down_tracks_continuous_while_potential_large(self):
        """While Phi is far above the threshold, the discrete drop factor is close to lambda^2."""
        net = topologies.random_regular(32, 4, seed=2)
        # A very large point load keeps the potential above the threshold for a while.
        tokens = 4000 * net.num_nodes
        discrete = RoundDownDiffusion(net, point_load(net, tokens))
        lam = second_largest_eigenvalue(diffusion_matrix(net))
        trace = track_potential(discrete, rounds=8)
        assert trace.rounds_above_threshold > 0
        estimated = estimate_drop_factor(trace, above_threshold_only=True)
        assert estimated <= (1.3 * lam) ** 2

    def test_round_down_potential_never_increases(self):
        net = topologies.torus(5, dims=2)
        discrete = RoundDownDiffusion(net, point_load(net, 25 * 64))
        trace = track_potential(discrete, rounds=40)
        assert all(factor <= 1.0 + 1e-9 for factor in trace.drop_factors)


class TestDropFactorEstimation:
    def test_geometric_mean(self):
        from repro.analysis.potential import PotentialTrace

        trace = PotentialTrace(values=[100, 25, 6.25], drop_factors=[0.25, 0.25])
        assert estimate_drop_factor(trace) == pytest.approx(0.25)

    def test_empty_trace_returns_one(self):
        from repro.analysis.potential import PotentialTrace

        assert estimate_drop_factor(PotentialTrace()) == 1.0
