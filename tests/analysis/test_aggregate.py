"""Tests for :mod:`repro.analysis.aggregate`."""

from __future__ import annotations

import pytest

from repro.analysis.aggregate import aggregate_by, summarize_samples
from repro.exceptions import ExperimentError


class TestSummarizeSamples:
    def test_basic_statistics(self):
        stats = summarize_samples([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.median == pytest.approx(2.5)
        assert stats.std == pytest.approx(1.118, abs=1e-3)

    def test_single_sample(self):
        stats = summarize_samples([7.0])
        assert stats.mean == 7.0
        assert stats.std == 0.0
        assert stats.percentile_90 == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            summarize_samples([])

    def test_as_dict(self):
        stats = summarize_samples([1, 2, 3])
        data = stats.as_dict()
        assert set(data) == {"count", "mean", "std", "min", "max", "median", "p90"}


class TestAggregateBy:
    def test_grouping(self):
        items = [("a", 1.0), ("b", 4.0), ("a", 3.0), ("b", 6.0)]
        grouped = aggregate_by(items, key=lambda item: item[0], value=lambda item: item[1])
        assert set(grouped) == {"a", "b"}
        assert grouped["a"].mean == pytest.approx(2.0)
        assert grouped["b"].mean == pytest.approx(5.0)

    def test_single_group(self):
        items = [1.0, 2.0, 3.0]
        grouped = aggregate_by(items, key=lambda _: "all", value=float)
        assert grouped["all"].count == 3
