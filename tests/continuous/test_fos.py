"""Unit tests for the first-order diffusion process (Equations (1)-(3))."""

from __future__ import annotations

import numpy as np
import pytest

from repro.continuous.fos import FirstOrderDiffusion
from repro.exceptions import ConvergenceError, ProcessError
from repro.network import topologies
from repro.network.spectral import compute_alphas, diffusion_matrix
from repro.tasks.generators import point_load


class TestSingleRound:
    def test_flows_match_equation_one(self):
        """y_{i,j} = alpha_{i,j} / s_i * x_i for every edge and direction."""
        net = topologies.cycle(5).with_speeds([1, 2, 1, 3, 1])
        load = np.array([10.0, 4.0, 0.0, 9.0, 2.0])
        alphas = compute_alphas(net)
        process = FirstOrderDiffusion(net, load, alphas=alphas)
        flows = process.advance()
        for (u, v) in net.edges:
            assert flows.sent(u, v) == pytest.approx(alphas[(u, v)] / net.speed(u) * load[u])
            assert flows.sent(v, u) == pytest.approx(alphas[(u, v)] / net.speed(v) * load[v])

    def test_round_matches_diffusion_matrix(self):
        """One FOS round equals x(t+1) = x(t) P."""
        net = topologies.torus(4, dims=2)
        load = point_load(net, 160).astype(float)
        process = FirstOrderDiffusion(net, load)
        matrix = diffusion_matrix(net, alphas=process.alphas)
        process.advance()
        np.testing.assert_allclose(process.load, load @ matrix, atol=1e-9)

    def test_many_rounds_match_matrix_power(self):
        net = topologies.hypercube(3)
        load = point_load(net, 80).astype(float)
        process = FirstOrderDiffusion(net, load)
        matrix = diffusion_matrix(net, alphas=process.alphas)
        rounds = 7
        process.run(rounds)
        np.testing.assert_allclose(process.load, load @ np.linalg.matrix_power(matrix, rounds),
                                   atol=1e-8)

    def test_load_conserved(self):
        net = topologies.random_regular(16, 4, seed=1)
        load = point_load(net, 321).astype(float)
        process = FirstOrderDiffusion(net, load)
        process.run(25)
        assert process.load.sum() == pytest.approx(321.0)

    def test_never_negative_load(self):
        """FOS never induces negative load because sum_j alpha_{ij} < s_i."""
        net = topologies.star(8)
        load = point_load(net, 50).astype(float)
        process = FirstOrderDiffusion(net, load, check_negative_load=True)
        process.run(30)
        assert not process.induced_negative_load
        assert np.all(process.load >= -1e-9)


class TestConvergence:
    def test_converges_to_speed_proportional_allocation(self):
        net = topologies.cycle(6).with_speeds([1, 2, 1, 2, 1, 2])
        load = point_load(net, 90).astype(float)
        process = FirstOrderDiffusion(net, load)
        rounds = process.run_until_balanced()
        target = 90 * net.speeds / net.total_speed
        assert np.all(np.abs(process.load - target) <= 1.0)
        assert rounds > 0
        assert process.is_balanced()

    def test_balanced_start_stays_balanced(self):
        net = topologies.torus(4, dims=2)
        load = np.full(net.num_nodes, 10.0)
        process = FirstOrderDiffusion(net, load)
        process.run(5)
        np.testing.assert_allclose(process.load, load, atol=1e-12)
        assert process.run_until_balanced() == 5  # already balanced, no extra rounds

    def test_convergence_error_when_not_enough_rounds(self):
        net = topologies.cycle(32)
        load = point_load(net, 3200).astype(float)
        process = FirstOrderDiffusion(net, load)
        with pytest.raises(ConvergenceError):
            process.run_until_balanced(max_rounds=3)


class TestCumulativeFlows:
    def test_cumulative_flow_antisymmetry(self):
        net = topologies.path(4)
        process = FirstOrderDiffusion(net, [12.0, 0.0, 0.0, 0.0])
        process.run(5)
        for (u, v) in net.edges:
            assert process.cumulative_flow_between(u, v) == pytest.approx(
                -process.cumulative_flow_between(v, u))

    def test_cumulative_flow_explains_load_change(self):
        """x_i(t) - x_i(0) equals the net flow into i."""
        net = topologies.torus(4, dims=2)
        load = point_load(net, 64).astype(float)
        process = FirstOrderDiffusion(net, load)
        process.run(9)
        for node in net.nodes:
            inflow = sum(process.cumulative_flow_between(j, node) for j in net.neighbors(node))
            assert process.load[node] - load[node] == pytest.approx(inflow, abs=1e-9)


class TestValidation:
    def test_negative_initial_load_rejected(self):
        net = topologies.cycle(4)
        with pytest.raises(ProcessError):
            FirstOrderDiffusion(net, [-1.0, 1, 1, 1])

    def test_missing_alpha_rejected(self):
        net = topologies.cycle(4)
        with pytest.raises(ProcessError):
            FirstOrderDiffusion(net, [1, 1, 1, 1], alphas={(0, 1): 0.2})

    def test_negative_run_rejected(self):
        net = topologies.cycle(4)
        process = FirstOrderDiffusion(net, [1, 1, 1, 1])
        with pytest.raises(ProcessError):
            process.run(-1)

    def test_disconnected_network_rejected(self):
        import networkx as nx
        from repro.network.graph import Network

        graph = nx.Graph()
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        net = Network(graph)
        with pytest.raises(Exception):
            FirstOrderDiffusion(net, [1, 1, 1, 1])
