"""Unit tests for :class:`repro.continuous.base.RoundFlows`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.continuous.base import RoundFlows
from repro.exceptions import ProcessError
from repro.network import topologies


@pytest.fixture
def net():
    return topologies.path(3)  # edges (0,1) and (1,2)


class TestRoundFlows:
    def test_empty_flows(self, net):
        flows = RoundFlows(net)
        assert flows.sent(0, 1) == 0.0
        np.testing.assert_array_equal(flows.net(), [0, 0])
        np.testing.assert_array_equal(flows.outgoing_all(), [0, 0, 0])

    def test_sent_directionality(self, net):
        flows = RoundFlows(net, forward=np.array([2.0, 0.0]), backward=np.array([0.5, 1.0]))
        assert flows.sent(0, 1) == 2.0
        assert flows.sent(1, 0) == 0.5
        assert flows.sent(2, 1) == 1.0
        assert flows.sent(1, 2) == 0.0

    def test_net_between(self, net):
        flows = RoundFlows(net, forward=np.array([2.0, 0.0]), backward=np.array([0.5, 1.0]))
        assert flows.net_between(0, 1) == pytest.approx(1.5)
        assert flows.net_between(1, 0) == pytest.approx(-1.5)

    def test_outgoing(self, net):
        flows = RoundFlows(net, forward=np.array([2.0, 3.0]), backward=np.array([0.5, 1.0]))
        assert flows.outgoing(0) == pytest.approx(2.0)
        assert flows.outgoing(1) == pytest.approx(0.5 + 3.0)
        assert flows.outgoing(2) == pytest.approx(1.0)
        np.testing.assert_allclose(flows.outgoing_all(), [2.0, 3.5, 1.0])

    def test_apply_to_conserves_total(self, net):
        flows = RoundFlows(net, forward=np.array([2.0, 3.0]), backward=np.array([0.5, 1.0]))
        loads = np.array([10.0, 5.0, 1.0])
        updated = flows.apply_to(loads)
        assert updated.sum() == pytest.approx(loads.sum())
        np.testing.assert_allclose(updated, [10 - 1.5, 5 + 1.5 - 2.0, 1 + 2.0])

    def test_wrong_shape_rejected(self, net):
        with pytest.raises(ProcessError):
            RoundFlows(net, forward=np.zeros(3))
