"""Tests for the general linear process (Equations (10)-(11) of Lemma 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.properties import is_additive, is_terminating
from repro.continuous.dimension_exchange import DimensionExchange
from repro.continuous.fos import FirstOrderDiffusion
from repro.continuous.general import (
    GeneralLinearProcess,
    constant_alpha_provider,
    matching_alpha_provider,
)
from repro.continuous.sos import SecondOrderDiffusion
from repro.core.algorithm1 import DeterministicFlowImitation, theorem3_discrepancy_bound
from repro.exceptions import ProcessError
from repro.network import topologies
from repro.network.matchings import PeriodicMatchingSchedule
from repro.tasks.assignment import TaskAssignment
from repro.tasks.generators import point_load
from repro.tasks.load import max_avg_discrepancy


class TestEquivalences:
    def test_constant_provider_with_beta_one_equals_fos(self):
        net = topologies.torus(4, dims=2)
        load = point_load(net, 160).astype(float)
        general = GeneralLinearProcess(net, load, constant_alpha_provider(net), beta=1.0)
        fos = FirstOrderDiffusion(net, load)
        general.run(12)
        fos.run(12)
        np.testing.assert_allclose(general.load, fos.load, atol=1e-9)

    def test_constant_provider_with_beta_equals_sos(self):
        net = topologies.hypercube(3)
        load = point_load(net, 80).astype(float)
        beta = 1.4
        general = GeneralLinearProcess(net, load, constant_alpha_provider(net), beta=beta)
        sos = SecondOrderDiffusion(net, load, beta=beta)
        general.run(10)
        sos.run(10)
        np.testing.assert_allclose(general.load, sos.load, atol=1e-8)

    def test_matching_provider_equals_dimension_exchange(self):
        net = topologies.torus(4, dims=2).with_speeds([1 + (i % 2) for i in range(16)])
        load = point_load(net, 320).astype(float)
        schedule = PeriodicMatchingSchedule(net)
        general = GeneralLinearProcess(net, load, matching_alpha_provider(net, schedule),
                                       beta=1.0)
        exchange = DimensionExchange(net, load, schedule)
        general.run(15)
        exchange.run(15)
        np.testing.assert_allclose(general.load, exchange.load, atol=1e-9)


class TestCustomProcess:
    def _alternating_provider(self, net):
        """A custom process: odd rounds use diffusion weights, even rounds a matching."""
        schedule = PeriodicMatchingSchedule(net)
        diffusion = constant_alpha_provider(net)
        matching = matching_alpha_provider(net, schedule)
        return lambda t: diffusion(t) if t % 2 else matching(t)

    def test_custom_process_is_additive_and_terminating(self):
        net = topologies.hypercube(3)
        provider = self._alternating_provider(net)
        factory = lambda load: GeneralLinearProcess(net, load, provider, beta=1.0)
        assert is_additive(factory, [10.0] * 8, [0, 5, 0, 5, 0, 5, 0, 5], rounds=8).holds
        assert is_terminating(factory, net, level=6.0, rounds=8).holds

    def test_custom_process_can_be_discretized(self):
        """Algorithm 1 applies to any additive terminating process built this way."""
        net = topologies.hypercube(4)
        provider = self._alternating_provider(net)
        loads = point_load(net, 16 * 16)
        assignment = TaskAssignment.from_unit_loads(net, loads)
        continuous = GeneralLinearProcess(net, assignment.loads(), provider, beta=1.0)
        balancer = DeterministicFlowImitation(continuous, assignment)
        balancer.run_until_continuous_balanced(max_rounds=50_000)
        bound = theorem3_discrepancy_bound(net.max_degree, 1.0)
        discrepancy = max_avg_discrepancy(balancer.loads(include_dummies=False), net,
                                          total_weight=balancer.original_weight)
        assert discrepancy <= bound + 1e-9

    def test_convergence_of_custom_process(self):
        net = topologies.torus(4, dims=2)
        provider = self._alternating_provider(net)
        process = GeneralLinearProcess(net, point_load(net, 320).astype(float), provider)
        process.run_until_balanced(max_rounds=50_000)
        assert process.is_balanced()


class TestValidation:
    def test_invalid_beta(self):
        net = topologies.cycle(4)
        with pytest.raises(ProcessError):
            GeneralLinearProcess(net, [1.0] * 4, constant_alpha_provider(net), beta=0.0)

    def test_row_sum_violation_detected(self):
        net = topologies.cycle(4)
        bad_provider = lambda t: {edge: 0.6 for edge in net.edges}  # 2 * 0.6 >= 1
        process = GeneralLinearProcess(net, [4.0] * 4, bad_provider)
        with pytest.raises(ProcessError):
            process.advance()

    def test_non_positive_alpha_detected(self):
        net = topologies.cycle(4)
        bad_provider = lambda t: {edge: 0.0 for edge in net.edges}
        process = GeneralLinearProcess(net, [4.0] * 4, bad_provider)
        with pytest.raises(ProcessError):
            process.advance()

    def test_validation_can_be_disabled(self):
        net = topologies.cycle(4)
        provider = lambda t: {edge: 0.6 for edge in net.edges}
        process = GeneralLinearProcess(net, [4.0] * 4, provider, validate_rows=False)
        process.advance()  # no exception; caller accepts responsibility
        assert process.round_index == 1

    def test_matching_provider_network_mismatch(self):
        net_a = topologies.cycle(6)
        net_b = topologies.cycle(6)
        schedule = PeriodicMatchingSchedule(net_a)
        with pytest.raises(ProcessError):
            matching_alpha_provider(net_b, schedule)
