"""Unit tests for the second-order diffusion process (Equation (4))."""

from __future__ import annotations

import numpy as np
import pytest

from repro.continuous.fos import FirstOrderDiffusion
from repro.continuous.sos import SecondOrderDiffusion
from repro.exceptions import ProcessError
from repro.network import topologies
from repro.network.spectral import diffusion_matrix, optimal_sos_beta, second_largest_eigenvalue
from repro.tasks.generators import point_load


class TestConstruction:
    def test_default_beta_is_optimal(self):
        net = topologies.cycle(16)
        process = SecondOrderDiffusion(net, point_load(net, 64).astype(float))
        lam = second_largest_eigenvalue(diffusion_matrix(net, alphas=process.alphas))
        assert process.beta == pytest.approx(optimal_sos_beta(lam), rel=1e-9)

    def test_explicit_beta(self):
        net = topologies.cycle(8)
        process = SecondOrderDiffusion(net, [8.0] * 8, beta=1.5)
        assert process.beta == 1.5

    def test_invalid_beta(self):
        net = topologies.cycle(8)
        with pytest.raises(ProcessError):
            SecondOrderDiffusion(net, [1.0] * 8, beta=0.0)
        with pytest.raises(ProcessError):
            SecondOrderDiffusion(net, [1.0] * 8, beta=2.5)


class TestDynamics:
    def test_first_round_equals_fos(self):
        net = topologies.torus(4, dims=2)
        load = point_load(net, 160).astype(float)
        sos = SecondOrderDiffusion(net, load, beta=1.7)
        fos = FirstOrderDiffusion(net, load)
        sos_flows = sos.advance()
        fos_flows = fos.advance()
        np.testing.assert_allclose(sos_flows.forward, fos_flows.forward, atol=1e-12)
        np.testing.assert_allclose(sos_flows.backward, fos_flows.backward, atol=1e-12)

    def test_round_equation(self):
        """x(t+1) = beta x(t) P + (1 - beta) x(t-1) for t >= 1."""
        net = topologies.hypercube(3)
        load = point_load(net, 200).astype(float)
        beta = 1.4
        process = SecondOrderDiffusion(net, load, beta=beta)
        matrix = diffusion_matrix(net, alphas=process.alphas)
        history = [process.load]
        for _ in range(6):
            process.advance()
            history.append(process.load)
        for t in range(1, 6):
            expected = beta * history[t] @ matrix + (1 - beta) * history[t - 1]
            np.testing.assert_allclose(history[t + 1], expected, atol=1e-8)

    def test_beta_one_reduces_to_fos(self):
        net = topologies.torus(4, dims=2)
        load = point_load(net, 80).astype(float)
        sos = SecondOrderDiffusion(net, load, beta=1.0)
        fos = FirstOrderDiffusion(net, load)
        sos.run(10)
        fos.run(10)
        np.testing.assert_allclose(sos.load, fos.load, atol=1e-9)

    def test_load_conserved(self):
        net = topologies.cycle(12)
        load = point_load(net, 144).astype(float)
        process = SecondOrderDiffusion(net, load)
        process.run(40)
        assert process.load.sum() == pytest.approx(144.0)


class TestConvergenceSpeed:
    def test_sos_faster_than_fos_on_cycle(self):
        """On poorly-expanding graphs SOS converges in far fewer rounds than FOS."""
        net = topologies.cycle(32)
        load = point_load(net, 32 * 32).astype(float)
        fos_rounds = FirstOrderDiffusion(net, load).run_until_balanced(max_rounds=100_000)
        sos_rounds = SecondOrderDiffusion(net, load).run_until_balanced(max_rounds=100_000)
        assert sos_rounds < fos_rounds

    def test_sos_converges_with_speeds(self):
        net = topologies.cycle(10).with_speeds([1, 2, 1, 2, 1, 2, 1, 2, 1, 2])
        load = point_load(net, 300).astype(float)
        process = SecondOrderDiffusion(net, load)
        process.run_until_balanced(max_rounds=50_000)
        target = 300 * net.speeds / net.total_speed
        assert np.all(np.abs(process.load - target) <= 1.0)

    def test_sos_may_induce_negative_load(self):
        """With an aggressive beta the outgoing demand can exceed the load."""
        net = topologies.path(8)
        load = point_load(net, 100, node=7).astype(float)
        process = SecondOrderDiffusion(net, load, beta=1.99)
        process.run(60)
        # The run completes; the flag records whether negative load occurred.
        assert isinstance(process.induced_negative_load, bool)
