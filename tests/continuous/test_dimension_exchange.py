"""Unit tests for the matching-based dimension-exchange process (Equation (5))."""

from __future__ import annotations

import numpy as np
import pytest

from repro.continuous.dimension_exchange import (
    DimensionExchange,
    periodic_dimension_exchange,
    random_matching_exchange,
)
from repro.exceptions import ProcessError
from repro.network import topologies
from repro.network.matchings import (
    PeriodicMatchingSchedule,
    RandomMatchingSchedule,
    SingleMatchingSchedule,
)
from repro.tasks.generators import point_load


class TestSingleEdge:
    def test_matched_edge_equalises_makespans(self):
        """After one round, both endpoints of a matched edge have equal makespan."""
        net = topologies.path(2).with_speeds([1, 3])
        schedule = SingleMatchingSchedule(net, [(0, 1)])
        process = DimensionExchange(net, [8.0, 0.0], schedule)
        process.advance()
        spans = process.load / net.speeds
        assert spans[0] == pytest.approx(spans[1])
        assert process.load.sum() == pytest.approx(8.0)

    def test_flow_matches_equation_five(self):
        """y_{i,j} = (alpha_{i,j} / s_i) x_i with alpha = s_i s_j / (s_i + s_j)."""
        net = topologies.path(2).with_speeds([2, 5])
        schedule = SingleMatchingSchedule(net, [(0, 1)])
        load = np.array([14.0, 7.0])
        process = DimensionExchange(net, load, schedule)
        flows = process.advance()
        alpha = 2 * 5 / 7.0
        assert flows.sent(0, 1) == pytest.approx(alpha / 2.0 * 14.0)
        assert flows.sent(1, 0) == pytest.approx(alpha / 5.0 * 7.0)

    def test_unmatched_nodes_untouched(self):
        net = topologies.path(4)
        schedule = SingleMatchingSchedule(net, [(0, 1)])
        process = DimensionExchange(net, [4.0, 0.0, 9.0, 1.0], schedule)
        process.advance()
        assert process.load[2] == 9.0
        assert process.load[3] == 1.0


class TestSchedules:
    def test_periodic_convergence(self):
        net = topologies.hypercube(4)
        load = point_load(net, 16 * 32).astype(float)
        process = periodic_dimension_exchange(net, load)
        rounds = process.run_until_balanced(max_rounds=20_000)
        assert rounds > 0
        assert np.all(np.abs(process.load - 32.0) <= 1.0)

    def test_random_matching_convergence(self):
        net = topologies.random_regular(24, 4, seed=2)
        load = point_load(net, 24 * 16).astype(float)
        process = random_matching_exchange(net, load, seed=5)
        process.run_until_balanced(max_rounds=50_000)
        assert np.all(np.abs(process.load - 16.0) <= 1.0)

    def test_convergence_with_speeds(self):
        net = topologies.torus(4, dims=2).with_speeds([1 + (i % 3) for i in range(16)])
        load = point_load(net, 640).astype(float)
        process = periodic_dimension_exchange(net, load)
        process.run_until_balanced(max_rounds=50_000)
        target = 640 * net.speeds / net.total_speed
        assert np.all(np.abs(process.load - target) <= 1.0)

    def test_load_conserved(self):
        net = topologies.cycle(9)
        load = point_load(net, 99).astype(float)
        process = random_matching_exchange(net, load, seed=1)
        process.run(200)
        assert process.load.sum() == pytest.approx(99.0)

    def test_never_negative_load(self):
        net = topologies.star(6)
        load = point_load(net, 30).astype(float)
        process = periodic_dimension_exchange(net, load)
        process._check_negative = True  # enable strict checking
        process.run(100)
        assert not process.induced_negative_load
        assert np.all(process.load >= -1e-9)

    def test_shared_schedule_gives_identical_runs(self):
        """Two processes sharing a schedule observe the same random matchings."""
        net = topologies.random_regular(16, 4, seed=3)
        load = point_load(net, 160).astype(float)
        schedule = RandomMatchingSchedule(net, seed=11)
        a = DimensionExchange(net, load, schedule)
        b = DimensionExchange(net, load, schedule)
        a.run(30)
        b.run(30)
        np.testing.assert_allclose(a.load, b.load, atol=1e-12)

    def test_schedule_network_mismatch_rejected(self):
        net_a = topologies.cycle(6)
        net_b = topologies.cycle(6)
        schedule = PeriodicMatchingSchedule(net_a)
        with pytest.raises(ProcessError):
            DimensionExchange(net_b, [1.0] * 6, schedule)
