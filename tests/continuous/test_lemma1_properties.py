"""Lemma 1: FOS, SOS and matching-based processes are additive and terminating.

These tests exercise the numerical property checkers of
:mod:`repro.analysis.properties` on all three process families, including
heterogeneous speeds and coupled random-matching schedules, plus
hypothesis-driven randomized load vectors.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.properties import (
    induces_negative_load,
    is_additive,
    is_terminating,
)
from repro.continuous.dimension_exchange import DimensionExchange
from repro.continuous.fos import FirstOrderDiffusion
from repro.continuous.sos import SecondOrderDiffusion
from repro.network import topologies
from repro.network.matchings import PeriodicMatchingSchedule, RandomMatchingSchedule


@pytest.fixture
def speedy_torus():
    return topologies.torus(4, dims=2).with_speeds([1 + (i % 3) for i in range(16)])


def fos_factory(network):
    return lambda load: FirstOrderDiffusion(network, load)


def sos_factory(network, beta=1.6):
    return lambda load: SecondOrderDiffusion(network, load, beta=beta)


def periodic_factory(network):
    schedule = PeriodicMatchingSchedule(network)
    return lambda load: DimensionExchange(network, load, schedule)


def random_matching_factory(network, seed=7):
    schedule = RandomMatchingSchedule(network, seed=seed)
    return lambda load: DimensionExchange(network, load, schedule)


ALL_FACTORIES = {
    "fos": fos_factory,
    "sos": sos_factory,
    "periodic": periodic_factory,
    "random-matching": random_matching_factory,
}


class TestAdditivity:
    @pytest.mark.parametrize("name", sorted(ALL_FACTORIES))
    def test_additive_uniform_speeds(self, name):
        network = topologies.hypercube(3)
        rng = np.random.default_rng(1)
        load_a = rng.integers(0, 20, size=network.num_nodes).astype(float)
        load_b = rng.integers(0, 20, size=network.num_nodes).astype(float)
        report = is_additive(ALL_FACTORIES[name](network), load_a, load_b, rounds=12)
        assert report.holds, f"{name}: violation {report.max_violation}"

    @pytest.mark.parametrize("name", sorted(ALL_FACTORIES))
    def test_additive_with_speeds(self, name, speedy_torus):
        rng = np.random.default_rng(2)
        load_a = rng.integers(0, 30, size=speedy_torus.num_nodes).astype(float)
        load_b = rng.integers(0, 30, size=speedy_torus.num_nodes).astype(float)
        report = is_additive(ALL_FACTORIES[name](speedy_torus), load_a, load_b, rounds=10)
        assert report.holds, f"{name}: violation {report.max_violation}"

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_fos_additive_property(self, seed):
        """Property-based: FOS is additive for arbitrary non-negative integer loads."""
        network = topologies.cycle(8)
        rng = np.random.default_rng(seed)
        load_a = rng.integers(0, 50, size=8).astype(float)
        load_b = rng.integers(0, 50, size=8).astype(float)
        report = is_additive(fos_factory(network), load_a, load_b, rounds=8)
        assert report.holds

    @given(seed=st.integers(min_value=0, max_value=10_000),
           beta=st.floats(min_value=1.0, max_value=1.9))
    @settings(max_examples=15, deadline=None)
    def test_sos_additive_property(self, seed, beta):
        network = topologies.torus(3, dims=2)
        rng = np.random.default_rng(seed)
        load_a = rng.integers(0, 40, size=network.num_nodes).astype(float)
        load_b = rng.integers(0, 40, size=network.num_nodes).astype(float)
        report = is_additive(sos_factory(network, beta=beta), load_a, load_b, rounds=6)
        assert report.holds


class TestTerminating:
    @pytest.mark.parametrize("name", sorted(ALL_FACTORIES))
    def test_terminating_uniform(self, name):
        network = topologies.random_regular(12, 3, seed=4)
        report = is_terminating(ALL_FACTORIES[name](network), network, level=7.0, rounds=15)
        assert report.holds, f"{name}: violation {report.max_violation}"

    @pytest.mark.parametrize("name", sorted(ALL_FACTORIES))
    def test_terminating_with_speeds(self, name, speedy_torus):
        report = is_terminating(ALL_FACTORIES[name](speedy_torus), speedy_torus,
                                level=3.0, rounds=12)
        assert report.holds, f"{name}: violation {report.max_violation}"

    @given(level=st.floats(min_value=0.0, max_value=50.0))
    @settings(max_examples=20, deadline=None)
    def test_fos_terminating_property(self, level):
        network = topologies.star(6)
        report = is_terminating(fos_factory(network), network, level=level, rounds=6)
        assert report.holds


class TestNegativeLoad:
    def test_fos_never_induces_negative_load(self):
        network = topologies.star(10)
        load = np.zeros(10)
        load[3] = 100.0
        assert not induces_negative_load(fos_factory(network), load, rounds=50)

    def test_dimension_exchange_never_induces_negative_load(self):
        network = topologies.hypercube(3)
        load = np.zeros(8)
        load[0] = 64.0
        assert not induces_negative_load(periodic_factory(network), load, rounds=50)

    def test_sos_can_induce_negative_load(self):
        """SOS is the one process in the paper that may induce negative load."""
        network = topologies.path(10)
        load = np.zeros(10)
        load[0] = 1000.0
        factory = sos_factory(network, beta=1.95)
        assert induces_negative_load(factory, load, rounds=200)
