"""Unit tests for :mod:`repro.tasks.generators`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TaskError
from repro.network import topologies
from repro.tasks import generators


@pytest.fixture
def net():
    return topologies.torus(4, dims=2)


class TestLoadVectors:
    def test_point_load(self, net):
        loads = generators.point_load(net, 100)
        assert loads.sum() == 100
        assert loads[0] == 100
        assert np.count_nonzero(loads) == 1

    def test_point_load_other_node(self, net):
        loads = generators.point_load(net, 10, node=5)
        assert loads[5] == 10

    def test_point_load_invalid_node(self, net):
        with pytest.raises(TaskError):
            generators.point_load(net, 10, node=99)

    def test_point_load_negative_total(self, net):
        with pytest.raises(TaskError):
            generators.point_load(net, -1)

    def test_two_point_load(self, net):
        loads = generators.two_point_load(net, 11)
        assert loads.sum() == 11
        assert loads[0] == 5 and loads[-1] == 6

    def test_uniform_random_conserves_total(self, net):
        loads = generators.uniform_random_load(net, 500, seed=1)
        assert loads.sum() == 500
        assert np.all(loads >= 0)

    def test_uniform_random_reproducible(self, net):
        a = generators.uniform_random_load(net, 200, seed=4)
        b = generators.uniform_random_load(net, 200, seed=4)
        np.testing.assert_array_equal(a, b)

    def test_balanced_load(self):
        net = topologies.cycle(4).with_speeds([1, 2, 3, 4])
        loads = generators.balanced_load(net, 3)
        np.testing.assert_array_equal(loads, [3, 6, 9, 12])

    def test_balanced_load_negative_level(self, net):
        with pytest.raises(TaskError):
            generators.balanced_load(net, -1)

    def test_half_nodes_load(self, net):
        loads = generators.half_nodes_load(net, 10, seed=2)
        assert np.count_nonzero(loads) == net.num_nodes // 2
        assert set(np.unique(loads)).issubset({0, 10})

    def test_linear_gradient_load(self, net):
        loads = generators.linear_gradient_load(net, 30)
        assert loads[0] == 30
        assert loads[-1] == 0
        assert np.all(np.diff(loads) <= 0)


class TestAssignments:
    def test_unit_token_assignment(self, net):
        loads = generators.point_load(net, 50)
        assignment = generators.unit_token_assignment(net, loads)
        np.testing.assert_array_equal(assignment.loads(), loads)
        assert assignment.max_task_weight() == 1.0

    def test_weighted_assignment_point(self, net):
        assignment = generators.weighted_assignment(net, num_tasks=40, max_weight=5,
                                                    placement="point", seed=3)
        assert assignment.num_tasks == 40
        assert assignment.load(0) == assignment.total_weight()
        assert 1.0 <= assignment.max_task_weight() <= 5.0

    def test_weighted_assignment_uniform(self, net):
        assignment = generators.weighted_assignment(net, num_tasks=200, max_weight=3,
                                                    placement="uniform", seed=3)
        assert assignment.num_tasks == 200
        assert np.count_nonzero(assignment.loads()) > 1

    def test_weighted_assignment_proportional(self):
        net = topologies.cycle(4).with_speeds([1, 1, 1, 10])
        assignment = generators.weighted_assignment(net, num_tasks=500, max_weight=1,
                                                    placement="proportional", seed=5)
        loads = assignment.loads()
        assert loads[3] > loads[0]

    def test_weighted_assignment_invalid_placement(self, net):
        with pytest.raises(TaskError):
            generators.weighted_assignment(net, 10, placement="everywhere")

    def test_weighted_assignment_invalid_weight(self, net):
        with pytest.raises(TaskError):
            generators.weighted_assignment(net, 10, max_weight=0)

    def test_weighted_assignment_reproducible(self, net):
        a = generators.weighted_assignment(net, 30, max_weight=4, placement="uniform", seed=9)
        b = generators.weighted_assignment(net, 30, max_weight=4, placement="uniform", seed=9)
        np.testing.assert_array_equal(a.loads(), b.loads())


class TestSpeedProfiles:
    def test_uniform_speeds(self, net):
        np.testing.assert_array_equal(generators.uniform_speeds(net), np.ones(net.num_nodes))

    def test_random_integer_speeds_range(self, net):
        speeds = generators.random_integer_speeds(net, max_speed=5, seed=1)
        assert speeds.min() >= 1
        assert speeds.max() <= 5
        assert len(speeds) == net.num_nodes

    def test_random_integer_speeds_invalid(self, net):
        with pytest.raises(TaskError):
            generators.random_integer_speeds(net, max_speed=0)

    def test_power_of_two_speeds(self, net):
        speeds = generators.power_of_two_speeds(net, max_exponent=3, seed=2)
        assert set(np.unique(speeds)).issubset({1, 2, 4, 8})

    def test_power_of_two_invalid(self, net):
        with pytest.raises(TaskError):
            generators.power_of_two_speeds(net, max_exponent=-1)

    def test_degree_proportional_speeds(self):
        net = topologies.star(5)
        speeds = generators.proportional_to_degree_speeds(net)
        assert speeds[0] == 4
        assert np.all(speeds[1:] == 1)

    def test_speed_profiles_usable_as_network_speeds(self, net):
        speeds = generators.random_integer_speeds(net, max_speed=4, seed=7)
        upgraded = net.with_speeds(speeds)
        assert upgraded.total_speed == speeds.sum()
