"""Unit tests for :mod:`repro.tasks.task`."""

from __future__ import annotations

import pytest

from repro.exceptions import TaskError
from repro.tasks.task import Task, TaskFactory


class TestTask:
    def test_default_is_unit_token(self):
        task = Task(task_id=1)
        assert task.weight == 1.0
        assert task.is_token
        assert not task.is_dummy

    def test_weighted_task(self):
        task = Task(task_id=2, weight=3.0, origin=5)
        assert task.weight == 3.0
        assert not task.is_token
        assert task.origin == 5

    def test_non_positive_weight_rejected(self):
        with pytest.raises(TaskError):
            Task(task_id=3, weight=0.0)
        with pytest.raises(TaskError):
            Task(task_id=4, weight=-1.0)

    def test_dummy_must_have_unit_weight(self):
        with pytest.raises(TaskError):
            Task(task_id=5, weight=2.0, is_dummy=True)
        dummy = Task(task_id=6, weight=1.0, is_dummy=True)
        assert dummy.is_dummy

    def test_tasks_are_immutable(self):
        task = Task(task_id=7)
        with pytest.raises(AttributeError):
            task.weight = 2.0  # type: ignore[misc]


class TestTaskFactory:
    def test_ids_are_unique_and_increasing(self):
        factory = TaskFactory()
        tasks = [factory.create() for _ in range(10)]
        ids = [task.task_id for task in tasks]
        assert ids == sorted(ids)
        assert len(set(ids)) == 10

    def test_start_id(self):
        factory = TaskFactory(start_id=100)
        assert factory.create().task_id == 100

    def test_create_dummy(self):
        factory = TaskFactory()
        dummy = factory.create_dummy(origin=3)
        assert dummy.is_dummy
        assert dummy.weight == 1.0
        assert dummy.origin == 3

    def test_create_many(self):
        factory = TaskFactory()
        tasks = list(factory.create_many(5, weight=2.0, origin=1))
        assert len(tasks) == 5
        assert all(task.weight == 2.0 for task in tasks)
        assert all(task.origin == 1 for task in tasks)

    def test_create_many_negative_rejected(self):
        factory = TaskFactory()
        with pytest.raises(TaskError):
            list(factory.create_many(-1))
