"""Unit tests for :mod:`repro.tasks.load` (makespans, discrepancies, potential)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TaskError
from repro.network import topologies
from repro.tasks.load import (
    as_load_vector,
    balanced_allocation,
    makespans,
    max_avg_discrepancy,
    max_min_discrepancy,
    min_avg_discrepancy,
    quadratic_potential,
    summarize_loads,
)


@pytest.fixture
def net():
    return topologies.cycle(4)


@pytest.fixture
def speedy():
    return topologies.cycle(4).with_speeds([1, 1, 2, 4])


class TestValidation:
    def test_as_load_vector_roundtrip(self, net):
        vector = as_load_vector([1, 2, 3, 4], net)
        np.testing.assert_array_equal(vector, [1, 2, 3, 4])

    def test_wrong_length(self, net):
        with pytest.raises(TaskError):
            as_load_vector([1, 2], net)

    def test_non_finite(self, net):
        with pytest.raises(TaskError):
            as_load_vector([1, np.nan, 2, 3], net)


class TestBalancedAllocation:
    def test_uniform(self, net):
        np.testing.assert_allclose(balanced_allocation(8, net), [2, 2, 2, 2])

    def test_with_speeds(self, speedy):
        np.testing.assert_allclose(balanced_allocation(16, speedy), [2, 2, 4, 8])


class TestDiscrepancies:
    def test_makespans(self, speedy):
        np.testing.assert_allclose(makespans([1, 2, 4, 8], speedy), [1, 2, 2, 2])

    def test_max_min_uniform(self, net):
        assert max_min_discrepancy([5, 1, 3, 3], net) == 4.0

    def test_max_min_balanced_is_zero(self, speedy):
        balanced = balanced_allocation(24, speedy)
        assert max_min_discrepancy(balanced, speedy) == pytest.approx(0.0)

    def test_max_avg(self, net):
        # total 12 over capacity 4 -> average 3; max load 6.
        assert max_avg_discrepancy([6, 2, 2, 2], net) == pytest.approx(3.0)

    def test_max_avg_with_reference_weight(self, net):
        # Reported loads include 4 units of padding that the average should ignore.
        value = max_avg_discrepancy([6, 2, 2, 2], net, total_weight=8)
        assert value == pytest.approx(4.0)

    def test_min_avg(self, net):
        assert min_avg_discrepancy([6, 2, 2, 2], net) == pytest.approx(1.0)

    def test_max_avg_le_max_min_plus_avg_identity(self, speedy):
        """max-avg <= max-min always (the average lies between min and max makespan)."""
        loads = [7, 3, 5, 9]
        assert max_avg_discrepancy(loads, speedy) <= max_min_discrepancy(loads, speedy) + 1e-12


class TestPotential:
    def test_balanced_potential_zero(self, speedy):
        balanced = balanced_allocation(32, speedy)
        assert quadratic_potential(balanced, speedy) == pytest.approx(0.0)

    def test_point_load_potential(self, net):
        # loads (4,0,0,0): target 1 each, Phi = 9 + 1 + 1 + 1 = 12.
        assert quadratic_potential([4, 0, 0, 0], net) == pytest.approx(12.0)

    def test_potential_decreases_toward_balance(self, net):
        assert quadratic_potential([4, 0, 0, 0], net) > quadratic_potential([2, 1, 1, 0], net)


class TestSummary:
    def test_summary_consistency(self, speedy):
        loads = [3, 1, 6, 6]
        summary = summarize_loads(loads, speedy)
        assert summary.total_weight == 16
        assert summary.max_makespan == pytest.approx(3.0)
        assert summary.min_makespan == pytest.approx(1.0)
        assert summary.max_min_discrepancy == pytest.approx(2.0)
        assert summary.average_makespan == pytest.approx(2.0)
        assert summary.max_avg_discrepancy == pytest.approx(1.0)
        assert summary.potential == pytest.approx(quadratic_potential(loads, speedy))

    def test_summary_as_dict_keys(self, net):
        summary = summarize_loads([1, 1, 1, 1], net)
        data = summary.as_dict()
        assert set(data) == {
            "total_weight", "max_makespan", "min_makespan", "average_makespan",
            "max_min_discrepancy", "max_avg_discrepancy", "potential",
        }
