"""Unit tests for :mod:`repro.tasks.assignment`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TaskError
from repro.network import topologies
from repro.tasks.assignment import TaskAssignment
from repro.tasks.task import TaskFactory


@pytest.fixture
def net():
    return topologies.cycle(4)


@pytest.fixture
def factory():
    return TaskFactory()


class TestConstruction:
    def test_empty_assignment(self, net):
        assignment = TaskAssignment(net)
        assert assignment.num_tasks == 0
        np.testing.assert_array_equal(assignment.loads(), np.zeros(4))

    def test_from_unit_loads(self, net):
        assignment = TaskAssignment.from_unit_loads(net, [3, 0, 2, 1])
        np.testing.assert_array_equal(assignment.loads(), [3, 0, 2, 1])
        assert assignment.num_tasks == 6
        assert assignment.max_task_weight() == 1.0

    def test_from_unit_loads_wrong_length(self, net):
        with pytest.raises(TaskError):
            TaskAssignment.from_unit_loads(net, [1, 2, 3])

    def test_from_unit_loads_negative(self, net):
        with pytest.raises(TaskError):
            TaskAssignment.from_unit_loads(net, [1, -1, 0, 0])

    def test_from_unit_loads_non_integer(self, net):
        with pytest.raises(TaskError):
            TaskAssignment.from_unit_loads(net, [1, 1.5, 0, 0])

    def test_initial_tasks_per_node(self, net, factory):
        tasks = [[factory.create(weight=2.0)], [], [factory.create()], []]
        assignment = TaskAssignment(net, tasks_per_node=tasks)
        np.testing.assert_array_equal(assignment.loads(), [2, 0, 1, 0])

    def test_initial_tasks_wrong_length(self, net, factory):
        with pytest.raises(TaskError):
            TaskAssignment(net, tasks_per_node=[[], []])


class TestQueriesAndMetrics:
    def test_total_weight_and_makespans(self, net, factory):
        assignment = TaskAssignment(net)
        assignment.add(0, factory.create(weight=4.0))
        assignment.add(1, factory.create(weight=2.0))
        assert assignment.total_weight() == 6.0
        np.testing.assert_allclose(assignment.makespans(), [4, 2, 0, 0])

    def test_makespans_respect_speeds(self, factory):
        net = topologies.cycle(4).with_speeds([1, 2, 4, 1])
        assignment = TaskAssignment(net)
        assignment.add(1, factory.create(weight=4.0))
        assignment.add(2, factory.create(weight=4.0))
        np.testing.assert_allclose(assignment.makespans(), [0, 2, 1, 0])

    def test_location_of(self, net, factory):
        assignment = TaskAssignment(net)
        task = factory.create()
        assignment.add(2, task)
        assert assignment.location_of(task) == 2

    def test_location_of_unassigned(self, net, factory):
        assignment = TaskAssignment(net)
        with pytest.raises(TaskError):
            assignment.location_of(factory.create())

    def test_max_task_weight_empty(self, net):
        assert TaskAssignment(net).max_task_weight() == 0.0

    def test_tasks_at_invalid_node(self, net):
        with pytest.raises(TaskError):
            TaskAssignment(net).tasks_at(9)


class TestMutation:
    def test_add_and_remove(self, net, factory):
        assignment = TaskAssignment(net)
        task = factory.create(weight=3.0)
        assignment.add(1, task)
        assert assignment.load(1) == 3.0
        assignment.remove(1, task)
        assert assignment.load(1) == 0.0
        assert assignment.num_tasks == 0

    def test_double_add_rejected(self, net, factory):
        assignment = TaskAssignment(net)
        task = factory.create()
        assignment.add(0, task)
        with pytest.raises(TaskError):
            assignment.add(1, task)

    def test_remove_from_wrong_node(self, net, factory):
        assignment = TaskAssignment(net)
        task = factory.create()
        assignment.add(0, task)
        with pytest.raises(TaskError):
            assignment.remove(2, task)

    def test_move(self, net, factory):
        assignment = TaskAssignment(net)
        task = factory.create(weight=2.0)
        assignment.add(0, task)
        assignment.move(task, 0, 3)
        assert assignment.load(0) == 0.0
        assert assignment.load(3) == 2.0
        assert assignment.location_of(task) == 3

    def test_move_many_returns_weight(self, net, factory):
        assignment = TaskAssignment(net)
        tasks = [factory.create(weight=2.0), factory.create(weight=1.0)]
        for task in tasks:
            assignment.add(0, task)
        moved = assignment.move_many(tasks, 0, 1)
        assert moved == 3.0
        assert assignment.load(1) == 3.0

    def test_copy_is_independent(self, net, factory):
        assignment = TaskAssignment(net)
        task = factory.create()
        assignment.add(0, task)
        clone = assignment.copy()
        clone.move(task, 0, 1)
        assert assignment.load(0) == 1.0
        assert clone.load(1) == 1.0


class TestDummies:
    def test_dummy_loads_tracked_separately(self, net, factory):
        assignment = TaskAssignment(net)
        assignment.add(0, factory.create(weight=2.0))
        assignment.add(0, factory.create_dummy())
        assignment.add(1, factory.create_dummy())
        np.testing.assert_array_equal(assignment.loads(), [3, 1, 0, 0])
        np.testing.assert_array_equal(assignment.loads(include_dummies=False), [2, 0, 0, 0])
        np.testing.assert_array_equal(assignment.dummy_loads(), [1, 1, 0, 0])
        assert assignment.total_dummy_weight() == 2.0

    def test_remove_dummies(self, net, factory):
        assignment = TaskAssignment(net)
        assignment.add(0, factory.create())
        assignment.add(2, factory.create_dummy())
        assignment.add(2, factory.create_dummy())
        removed = assignment.remove_dummies()
        assert removed == 2.0
        assert assignment.total_dummy_weight() == 0.0
        assert assignment.num_tasks == 1

    def test_moving_dummy_moves_its_dummy_weight(self, net, factory):
        assignment = TaskAssignment(net)
        dummy = factory.create_dummy()
        assignment.add(0, dummy)
        assignment.move(dummy, 0, 2)
        np.testing.assert_array_equal(assignment.dummy_loads(), [0, 0, 1, 0])
