"""Hypothesis property-based tests of the core invariants.

These tests sample random instances (topologies, load vectors, seeds) and
check the invariants that must hold for *every* instance:

* conservation of the real workload by every discrete process;
* the per-edge flow-error bound of the flow-imitation algorithms;
* the per-node deviation bound (Lemma 6) while the infinite source is unused;
* discrepancy metrics are non-negative, and max-avg <= max-min;
* the continuous/discrete coupling never loses or invents tasks.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.continuous.fos import FirstOrderDiffusion
from repro.core.algorithm1 import DeterministicFlowImitation
from repro.core.algorithm2 import RandomizedFlowImitation
from repro.discrete.baselines.diffusion import RoundDownDiffusion
from repro.network import topologies
from repro.tasks.assignment import TaskAssignment
from repro.tasks.load import (
    max_avg_discrepancy,
    max_min_discrepancy,
    quadratic_potential,
    summarize_loads,
)


def small_network(kind: int):
    """Deterministically map an integer to one of a few small topologies."""
    builders = [
        lambda: topologies.cycle(6),
        lambda: topologies.path(5),
        lambda: topologies.star(6),
        lambda: topologies.torus(3, dims=2),
        lambda: topologies.hypercube(3),
        lambda: topologies.complete(5),
    ]
    return builders[kind % len(builders)]()


load_strategy = st.lists(st.integers(min_value=0, max_value=40), min_size=5, max_size=9)


def fit_load(loads, network):
    """Resize a hypothesis-generated load list to the network size."""
    values = list(loads)
    n = network.num_nodes
    if len(values) < n:
        values = values + [0] * (n - len(values))
    return np.array(values[:n], dtype=int)


class TestMetricsProperties:
    @given(kind=st.integers(0, 5), loads=load_strategy)
    @settings(max_examples=60, deadline=None)
    def test_discrepancies_non_negative_and_ordered(self, kind, loads):
        network = small_network(kind)
        vector = fit_load(loads, network)
        assert max_min_discrepancy(vector, network) >= 0
        assert max_avg_discrepancy(vector, network) >= 0
        assert max_avg_discrepancy(vector, network) <= max_min_discrepancy(vector, network) + 1e-9
        assert quadratic_potential(vector, network) >= 0

    @given(kind=st.integers(0, 5), loads=load_strategy, shift=st.integers(0, 20))
    @settings(max_examples=40, deadline=None)
    def test_discrepancy_invariant_under_uniform_shift(self, kind, loads, shift):
        """Adding the same number of tokens per speed unit leaves discrepancies unchanged."""
        network = small_network(kind)
        vector = fit_load(loads, network).astype(float)
        shifted = vector + shift * network.speeds
        assert max_min_discrepancy(vector, network) == pytest.approx(
            max_min_discrepancy(shifted, network))

    @given(kind=st.integers(0, 5), loads=load_strategy)
    @settings(max_examples=40, deadline=None)
    def test_summary_consistent_with_individual_metrics(self, kind, loads):
        network = small_network(kind)
        vector = fit_load(loads, network)
        summary = summarize_loads(vector, network)
        assert summary.max_min_discrepancy == pytest.approx(max_min_discrepancy(vector, network))
        assert summary.max_avg_discrepancy == pytest.approx(max_avg_discrepancy(vector, network))


class TestContinuousProperties:
    @given(kind=st.integers(0, 5), loads=load_strategy, rounds=st.integers(1, 15))
    @settings(max_examples=40, deadline=None)
    def test_fos_conserves_and_contracts(self, kind, loads, rounds):
        network = small_network(kind)
        vector = fit_load(loads, network).astype(float)
        process = FirstOrderDiffusion(network, vector)
        initial_potential = quadratic_potential(vector, network)
        process.run(rounds)
        assert process.load.sum() == pytest.approx(vector.sum())
        assert np.all(process.load >= -1e-9)
        assert quadratic_potential(process.load, network) <= initial_potential + 1e-9


class TestFlowImitationProperties:
    @given(kind=st.integers(0, 5), loads=load_strategy, rounds=st.integers(1, 12))
    @settings(max_examples=30, deadline=None)
    def test_algorithm1_invariants(self, kind, loads, rounds):
        network = small_network(kind)
        vector = fit_load(loads, network)
        assignment = TaskAssignment.from_unit_loads(network, vector)
        continuous = FirstOrderDiffusion(network, assignment.loads())
        balancer = DeterministicFlowImitation(continuous, assignment)
        deviation_bound = network.max_degree * balancer.w_max
        for _ in range(rounds):
            balancer.advance()
            # Real workload is conserved exactly.
            assert balancer.loads(include_dummies=False).sum() == pytest.approx(float(vector.sum()))
            # Observation 4: flow errors below w_max.
            assert np.all(np.abs(balancer.flow_errors()) <= balancer.w_max + 1e-9)
            # Lemma 6: node-level deviation below d * w_max while no dummies used.
            if not balancer.used_infinite_source:
                assert np.all(np.abs(balancer.load_deviation()) <= deviation_bound + 1e-9)
            # Discrete loads never negative (dummies cover any shortfall).
            assert np.all(balancer.loads() >= -1e-9)

    @given(kind=st.integers(0, 5), loads=load_strategy, seed=st.integers(0, 1000),
           rounds=st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_algorithm2_invariants(self, kind, loads, seed, rounds):
        network = small_network(kind)
        vector = fit_load(loads, network)
        assignment = TaskAssignment.from_unit_loads(network, vector)
        continuous = FirstOrderDiffusion(network, assignment.loads())
        balancer = RandomizedFlowImitation(continuous, assignment, seed=seed)
        for _ in range(rounds):
            balancer.advance()
            assert balancer.loads(include_dummies=False).sum() == pytest.approx(float(vector.sum()))
            assert np.all(np.abs(balancer.flow_errors()) <= 1.0 + 1e-9)
            assert np.all(balancer.loads() >= -1e-9)


class TestBaselineProperties:
    @given(kind=st.integers(0, 5), loads=load_strategy, rounds=st.integers(1, 20))
    @settings(max_examples=30, deadline=None)
    def test_round_down_conserves_and_stays_non_negative(self, kind, loads, rounds):
        network = small_network(kind)
        vector = fit_load(loads, network)
        balancer = RoundDownDiffusion(network, vector)
        balancer.run(rounds)
        assert balancer.loads().sum() == pytest.approx(float(vector.sum()))
        assert np.all(balancer.loads() >= 0)
        assert not balancer.went_negative
