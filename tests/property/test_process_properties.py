"""Further hypothesis property tests: matching processes, baselines, assignments.

Complements ``tests/property/test_invariants.py`` with invariants of the
matching-based processes, the quasirandom baseline's bounded-error property,
and the task-assignment bookkeeping under random move sequences.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.continuous.dimension_exchange import DimensionExchange
from repro.discrete.baselines.diffusion import QuasirandomDiffusion
from repro.discrete.baselines.matching import RoundDownMatching
from repro.network import topologies
from repro.network.matchings import PeriodicMatchingSchedule, RandomMatchingSchedule
from repro.tasks.assignment import TaskAssignment
from repro.tasks.task import TaskFactory


def small_network(kind: int):
    builders = [
        lambda: topologies.cycle(6),
        lambda: topologies.torus(3, dims=2),
        lambda: topologies.hypercube(3),
        lambda: topologies.star(6),
    ]
    return builders[kind % len(builders)]()


def fit_load(loads, network):
    values = list(loads)
    n = network.num_nodes
    if len(values) < n:
        values = values + [0] * (n - len(values))
    return np.array(values[:n], dtype=int)


load_strategy = st.lists(st.integers(min_value=0, max_value=50), min_size=4, max_size=9)


class TestMatchingProcesses:
    @given(kind=st.integers(0, 3), loads=load_strategy, seed=st.integers(0, 500),
           rounds=st.integers(1, 25))
    @settings(max_examples=30, deadline=None)
    def test_continuous_dimension_exchange_invariants(self, kind, loads, seed, rounds):
        network = small_network(kind)
        vector = fit_load(loads, network).astype(float)
        schedule = RandomMatchingSchedule(network, seed=seed)
        process = DimensionExchange(network, vector, schedule)
        process.run(rounds)
        # Conservation, non-negativity, and never any negative-load violation.
        assert process.load.sum() == pytest.approx(vector.sum())
        assert np.all(process.load >= -1e-9)
        assert not process.induced_negative_load

    @given(kind=st.integers(0, 3), loads=load_strategy, rounds=st.integers(1, 30))
    @settings(max_examples=30, deadline=None)
    def test_round_down_matching_invariants(self, kind, loads, rounds):
        network = small_network(kind)
        vector = fit_load(loads, network)
        schedule = PeriodicMatchingSchedule(network)
        balancer = RoundDownMatching(network, vector, schedule)
        start_discrepancy = balancer.max_min_discrepancy()
        balancer.run(rounds)
        assert balancer.loads().sum() == pytest.approx(float(vector.sum()))
        assert np.all(balancer.loads() >= 0)
        # Matching-model round-down never increases the max-min discrepancy.
        assert balancer.max_min_discrepancy() <= start_discrepancy + 1e-9


class TestQuasirandomBoundedError:
    @given(kind=st.integers(0, 3), loads=load_strategy, rounds=st.integers(1, 25))
    @settings(max_examples=30, deadline=None)
    def test_accumulated_error_below_one(self, kind, loads, rounds):
        network = small_network(kind)
        vector = fit_load(loads, network)
        balancer = QuasirandomDiffusion(network, vector)
        balancer.run(rounds)
        assert np.all(np.abs(balancer.accumulated_errors) <= 1.0 + 1e-9)
        assert balancer.loads().sum() == pytest.approx(float(vector.sum()))


class TestAssignmentBookkeeping:
    @given(loads=load_strategy, moves=st.lists(st.integers(0, 10_000), max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_random_moves_preserve_totals_and_locations(self, loads, moves):
        network = topologies.complete(5)
        vector = fit_load(loads, network)
        factory = TaskFactory()
        assignment = TaskAssignment(network)
        for node, count in enumerate(vector):
            for task in factory.create_many(int(count), weight=1.0, origin=node):
                assignment.add(node, task)
        total = assignment.total_weight()
        all_tasks = [task for node in network.nodes for task in assignment.tasks_at(node)]
        for choice in moves:
            if not all_tasks:
                break
            task = all_tasks[choice % len(all_tasks)]
            source = assignment.location_of(task)
            destination = (source + 1 + choice) % network.num_nodes
            if destination == source:
                continue
            assignment.move(task, source, destination)
            assert assignment.location_of(task) == destination
        assert assignment.total_weight() == pytest.approx(total)
        assert assignment.num_tasks == len(all_tasks)
        # Every node's load equals the sum of the weights of the tasks it holds.
        for node in network.nodes:
            held = sum(task.weight for task in assignment.tasks_at(node))
            assert assignment.load(node) == pytest.approx(held)
