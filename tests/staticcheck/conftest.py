"""Shared fixtures: write fixture snippets into a fake repo layout and check.

The rules scope themselves by path (``backend/``, ``counter_rng.py``,
``test_*.py``), so every fixture writes its snippet at a chosen relative
path under ``tmp_path`` and runs the checker over the whole tree.
"""

import textwrap

import pytest

from repro.staticcheck import check_paths


@pytest.fixture
def check_snippet(tmp_path):
    """``check_snippet(source, relpath=...)`` -> CheckReport for one file."""

    def run(source, relpath="src/repro/module.py", rules=None):
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        return check_paths([str(tmp_path)], rules=rules)

    return run
