"""The acceptance gate: the repo's own sources pass their static checks.

This is the in-suite twin of the CI ``repro check src`` step — any rule
violation introduced anywhere under ``src/`` fails tier-1 immediately, and
every suppression must carry a written reason.
"""

import pathlib

from repro.staticcheck import check_paths

REPO_SRC = pathlib.Path(__file__).resolve().parents[2] / "src"


def test_repo_sources_have_no_unsuppressed_findings():
    report = check_paths([str(REPO_SRC)])
    assert report.errors == []
    rendered = "\n".join(finding.render() for finding in report.findings)
    assert not report.findings, f"repro check src is dirty:\n{rendered}"
    assert report.files_checked > 50  # the whole tree was actually walked


def test_every_suppression_carries_a_reason():
    report = check_paths([str(REPO_SRC)])
    unexplained = [finding.render() for finding in report.suppressed
                   if not finding.suppression_reason]
    assert not unexplained, (
        "suppressions need a reason after the rule id:\n"
        + "\n".join(unexplained))
