"""Tiny assertion helpers shared by the staticcheck tests."""


def rule_ids(report):
    """The unsuppressed rule ids of a report, in report order."""
    return [finding.rule_id for finding in report.findings]
