"""Positive/negative fixture snippets for every rule (R001-R005)."""

from staticcheck_helpers import rule_ids


# --------------------------------------------------------------------- #
# R001 nondeterministic-rng
# --------------------------------------------------------------------- #


class TestNondeterministicRng:
    def test_global_random_module_draw_fires(self, check_snippet):
        report = check_snippet("""
            import random

            def jitter():
                return random.random()
        """)
        assert rule_ids(report) == ["R001"]
        assert "process-global RNG" in report.findings[0].message

    def test_np_random_module_draw_fires(self, check_snippet):
        report = check_snippet("""
            import numpy as np

            def noise(n):
                return np.random.rand(n)
        """)
        assert rule_ids(report) == ["R001"]

    def test_unseeded_default_rng_fires(self, check_snippet):
        report = check_snippet("""
            from numpy.random import default_rng

            def build():
                return default_rng()
        """)
        assert rule_ids(report) == ["R001"]

    def test_literal_seed_fires(self, check_snippet):
        report = check_snippet("""
            import numpy as np

            def build():
                return np.random.default_rng(1234)
        """)
        assert rule_ids(report) == ["R001"]

    def test_from_import_draw_fires(self, check_snippet):
        report = check_snippet("""
            from random import shuffle

            def scramble(items):
                shuffle(items)
        """)
        assert rule_ids(report) == ["R001"]

    def test_unseeded_random_class_fires(self, check_snippet):
        report = check_snippet("""
            import random

            def build():
                return random.Random()
        """)
        assert rule_ids(report) == ["R001"]

    def test_threaded_seed_is_clean(self, check_snippet):
        report = check_snippet("""
            import numpy as np

            def build(seed):
                return np.random.default_rng(seed)
        """)
        assert rule_ids(report) == []

    def test_derived_seed_expression_is_clean(self, check_snippet):
        report = check_snippet("""
            import random

            def backoff(position, attempt):
                return random.Random(position * 1000003 + attempt).random()
        """)
        assert rule_ids(report) == []

    def test_counter_rng_generators_are_clean(self, check_snippet):
        report = check_snippet("""
            import numpy as np

            def philox(key):
                return np.random.Generator(np.random.Philox(key=key))

            def spawn(seed, n):
                return np.random.SeedSequence(seed).spawn(n)
        """)
        assert rule_ids(report) == []

    def test_counter_rng_module_is_exempt(self, check_snippet):
        report = check_snippet("""
            import numpy as np

            def entropy():
                return int(np.random.default_rng().integers(1 << 63))
        """, relpath="src/repro/counter_rng.py")
        assert rule_ids(report) == []

    def test_faults_module_is_exempt(self, check_snippet):
        report = check_snippet("""
            import random

            def plan():
                return random.Random()
        """, relpath="src/repro/faults.py")
        assert rule_ids(report) == []

    def test_tests_are_exempt(self, check_snippet):
        report = check_snippet("""
            import random

            def test_something():
                assert random.random() >= 0
        """, relpath="tests/test_probe.py")
        assert rule_ids(report) == []


# --------------------------------------------------------------------- #
# R002 wall-clock-in-logic
# --------------------------------------------------------------------- #


class TestWallClockInLogic:
    def test_time_time_fires(self, check_snippet):
        report = check_snippet("""
            import time

            def stamp():
                return time.time()
        """)
        assert rule_ids(report) == ["R002"]

    def test_datetime_now_fires(self, check_snippet):
        report = check_snippet("""
            from datetime import datetime

            def stamp():
                return datetime.now()
        """)
        assert rule_ids(report) == ["R002"]

    def test_datetime_module_attribute_fires(self, check_snippet):
        report = check_snippet("""
            import datetime

            def stamp():
                return datetime.datetime.utcnow()
        """)
        assert rule_ids(report) == ["R002"]

    def test_from_import_perf_counter_fires(self, check_snippet):
        report = check_snippet("""
            from time import perf_counter

            def tick():
                return perf_counter()
        """)
        assert rule_ids(report) == ["R002"]

    def test_obs_layer_is_exempt(self, check_snippet):
        report = check_snippet("""
            import time

            def tick():
                return time.perf_counter()
        """, relpath="src/repro/obs/clock.py")
        assert rule_ids(report) == []

    def test_store_layer_is_exempt(self, check_snippet):
        report = check_snippet("""
            import time

            def stamp():
                return time.time()
        """, relpath="src/repro/store/meta.py")
        assert rule_ids(report) == []

    def test_sleep_is_not_a_clock_read(self, check_snippet):
        report = check_snippet("""
            import time

            def wait():
                time.sleep(0.1)
        """)
        assert rule_ids(report) == []

    def test_marked_timing_envelope_is_suppressed(self, check_snippet):
        report = check_snippet("""
            import time

            def timed(fn):
                start = time.perf_counter()  # repro: allow[R002] timing envelope
                fn()
                # repro: allow[R002] timing envelope
                return time.perf_counter() - start
        """)
        assert rule_ids(report) == []
        assert [f.rule_id for f in report.suppressed] == ["R002", "R002"]
        assert all(f.suppression_reason == "timing envelope"
                   for f in report.suppressed)


# --------------------------------------------------------------------- #
# R003 unordered-iteration-feeding-draws
# --------------------------------------------------------------------- #


class TestUnorderedIteration:
    def test_dict_view_loop_touching_rng_fires(self, check_snippet):
        report = check_snippet("""
            def round_step(requests, rng):
                for node in requests.keys():
                    rng.shuffle(node)
        """, relpath="src/repro/backend/kernel.py")
        assert rule_ids(report) == ["R003"]

    def test_set_call_loop_emitting_flow_fires(self, check_snippet):
        report = check_snippet("""
            def push(assignment, nodes):
                for node in set(nodes):
                    assignment.move(node, 0, 1)
        """, relpath="src/repro/core/push.py")
        assert rule_ids(report) == ["R003"]

    def test_set_literal_loop_updating_cumulative_flow_fires(self, check_snippet):
        report = check_snippet("""
            def accumulate(self):
                for edge in {1, 2, 3}:
                    self.cumulative_flows += edge
        """, relpath="src/repro/discrete/acc.py")
        assert rule_ids(report) == ["R003"]

    def test_comprehension_over_set_drawing_fires(self, check_snippet):
        report = check_snippet("""
            def draws(rng, edges):
                return [rng.random() for edge in set(edges)]
        """, relpath="src/repro/backend/comp.py")
        assert rule_ids(report) == ["R003"]

    def test_sorted_iteration_is_clean(self, check_snippet):
        report = check_snippet("""
            def round_step(requests, rng):
                for node in sorted(requests.keys()):
                    rng.shuffle(node)
        """, relpath="src/repro/backend/kernel.py")
        assert rule_ids(report) == []

    def test_unordered_loop_without_draws_is_clean(self, check_snippet):
        report = check_snippet("""
            def census(nodes):
                total = 0
                for node in set(nodes):
                    total += 1
                return total
        """, relpath="src/repro/backend/kernel.py")
        assert rule_ids(report) == []

    def test_list_iteration_with_rng_is_clean(self, check_snippet):
        report = check_snippet("""
            def round_step(edges, rng):
                for edge in edges:
                    rng.shuffle(edge)
        """, relpath="src/repro/backend/kernel.py")
        assert rule_ids(report) == []

    def test_outside_scoped_directories_is_clean(self, check_snippet):
        report = check_snippet("""
            def summarize(rows, rng):
                for row in set(rows):
                    rng.shuffle(row)
        """, relpath="src/repro/simulation/summary.py")
        assert rule_ids(report) == []


# --------------------------------------------------------------------- #
# R004 process-boundary-purity
# --------------------------------------------------------------------- #


class TestProcessBoundaryPurity:
    def test_callable_field_on_boundary_type_fires(self, check_snippet):
        report = check_snippet("""
            from dataclasses import dataclass
            from typing import Callable, Optional

            @dataclass(frozen=True)
            class GridCell:
                index: int
                on_done: Optional[Callable[[], None]] = None
        """, relpath="src/repro/simulation/cells.py")
        assert rule_ids(report) == ["R004"]
        assert "on_done" in report.findings[0].message

    def test_generator_field_fires(self, check_snippet):
        report = check_snippet("""
            from dataclasses import dataclass
            from typing import Iterator

            @dataclass
            class Scenario:
                name: str
                stream: Iterator[int]
        """, relpath="src/repro/simulation/spec.py")
        assert rule_ids(report) == ["R004"]

    def test_quoted_annotation_fires(self, check_snippet):
        report = check_snippet("""
            from dataclasses import dataclass

            @dataclass
            class FaultPlan:
                hook: "Callable[[int], None]"
        """, relpath="src/repro/plans.py")
        assert rule_ids(report) == ["R004"]

    def test_lambda_default_fires(self, check_snippet):
        report = check_snippet("""
            from dataclasses import dataclass

            @dataclass
            class StreamCheckpoint:
                transform: object = lambda state: state
        """, relpath="src/repro/snap.py")
        assert rule_ids(report) == ["R004"]

    def test_plain_data_fields_are_clean(self, check_snippet):
        report = check_snippet("""
            from dataclasses import dataclass, field
            from typing import Dict, List, Optional

            @dataclass(frozen=True)
            class GridCell:
                kind: str
                index: int
                seed: Optional[int] = None
                tags: List[str] = field(default_factory=list)
                extra: Dict[str, object] = field(default_factory=dict)
        """, relpath="src/repro/simulation/cells.py")
        assert rule_ids(report) == []

    def test_unregistered_class_is_ignored(self, check_snippet):
        report = check_snippet("""
            from dataclasses import dataclass
            from typing import Callable

            @dataclass
            class LocalHelper:
                fn: Callable[[], None]
        """)
        assert rule_ids(report) == []

    def test_non_dataclass_is_ignored(self, check_snippet):
        report = check_snippet("""
            from typing import Callable

            class GridCell:
                fn: Callable[[], None]
        """)
        assert rule_ids(report) == []


# --------------------------------------------------------------------- #
# R005 kernel-phase-coverage
# --------------------------------------------------------------------- #


class TestKernelPhaseCoverage:
    def test_unwrapped_execute_round_fires(self, check_snippet):
        report = check_snippet("""
            class Kernel:
                def _execute_round(self):
                    self._do_work()
        """, relpath="src/repro/backend/kern.py")
        assert rule_ids(report) == ["R005"]

    def test_unwrapped_advance_fires(self, check_snippet):
        report = check_snippet("""
            class Kernel:
                def advance(self):
                    self._step()
        """, relpath="src/repro/backend/kern.py")
        assert rule_ids(report) == ["R005"]

    def test_core_flow_imitation_is_in_scope(self, check_snippet):
        report = check_snippet("""
            class Balancer:
                def _execute_round(self):
                    self._imitate_round()
        """, relpath="src/repro/core/flow_imitation.py")
        assert rule_ids(report) == ["R005"]

    def test_kernel_phase_block_is_clean(self, check_snippet):
        report = check_snippet("""
            from repro.obs.kernels import kernel_phase

            class Kernel:
                def _execute_round(self):
                    with kernel_phase("flow/test-round"):
                        self._do_work()
        """, relpath="src/repro/backend/kern.py")
        assert rule_ids(report) == []

    def test_abstract_round_is_clean(self, check_snippet):
        report = check_snippet("""
            from abc import ABC, abstractmethod

            class Base(ABC):
                @abstractmethod
                def _execute_round(self):
                    ...
        """, relpath="src/repro/backend/base.py")
        assert rule_ids(report) == []

    def test_stub_body_is_clean(self, check_snippet):
        report = check_snippet("""
            class Declared:
                def _execute_round(self):
                    \"\"\"Subclasses override.\"\"\"
                    raise NotImplementedError
        """, relpath="src/repro/backend/decl.py")
        assert rule_ids(report) == []

    def test_other_core_modules_are_out_of_scope(self, check_snippet):
        report = check_snippet("""
            class Helper:
                def _execute_round(self):
                    self._do_work()
        """, relpath="src/repro/core/diagnostics.py")
        assert rule_ids(report) == []

    def test_other_method_names_are_clean(self, check_snippet):
        report = check_snippet("""
            class Kernel:
                def _plan_round(self):
                    self._do_work()
        """, relpath="src/repro/backend/kern.py")
        assert rule_ids(report) == []
