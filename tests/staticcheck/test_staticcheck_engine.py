"""Engine behaviour: suppressions, report shapes, exit-code contract."""

import json
import textwrap

from staticcheck_helpers import rule_ids

from repro.staticcheck import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    check_paths,
    parse_suppressions,
    render_json,
    render_text,
)

R001_SNIPPET = """
    import random

    def jitter():
        return random.random()
"""


class TestSuppressions:
    def test_same_line_comment_suppresses(self, check_snippet):
        report = check_snippet("""
            import random

            def jitter():
                return random.random()  # repro: allow[R001] fixture noise
        """)
        assert rule_ids(report) == []
        assert len(report.suppressed) == 1
        assert report.suppressed[0].suppression_reason == "fixture noise"

    def test_standalone_comment_above_suppresses(self, check_snippet):
        report = check_snippet("""
            import random

            def jitter():
                # repro: allow[R001] fixture noise
                return random.random()
        """)
        assert rule_ids(report) == []
        assert len(report.suppressed) == 1

    def test_trailing_comment_on_previous_code_line_does_not_leak(
            self, check_snippet):
        report = check_snippet("""
            import random

            def jitter():
                a = 1  # repro: allow[R001] only covers this line
                return random.random()
        """)
        assert rule_ids(report) == ["R001"]

    def test_wildcard_suppresses_every_rule(self, check_snippet):
        report = check_snippet("""
            import random

            def jitter():
                return random.random()  # repro: allow[*] anything goes
        """)
        assert rule_ids(report) == []

    def test_wrong_rule_id_does_not_suppress(self, check_snippet):
        report = check_snippet("""
            import random

            def jitter():
                return random.random()  # repro: allow[R002] wrong rule
        """)
        assert rule_ids(report) == ["R001"]

    def test_multiple_ids_in_one_comment(self, check_snippet):
        report = check_snippet("""
            import random
            import time

            def jitter():
                # repro: allow[R001, R002] fixture covering both
                return random.random() + time.time()
        """)
        assert rule_ids(report) == []
        assert {f.rule_id for f in report.suppressed} == {"R001", "R002"}

    def test_parse_suppressions_records_standalone_flag(self):
        source = textwrap.dedent("""
            x = 1  # repro: allow[R001] inline
            # repro: allow[R002] standalone
        """)
        parsed = parse_suppressions(source)
        assert parsed[2].standalone is False
        assert parsed[3].standalone is True
        assert parsed[3].rule_ids == ("R002",)
        assert parsed[3].covers("R002") and not parsed[3].covers("R001")


class TestReportShapes:
    def test_json_shape(self, check_snippet):
        report = check_snippet(R001_SNIPPET)
        payload = render_json(report)
        assert payload["version"] == 1
        assert payload["files_checked"] == 1
        assert payload["exit_code"] == EXIT_FINDINGS
        assert payload["errors"] == []
        assert payload["suppressed"] == []
        (finding,) = payload["findings"]
        assert finding["rule"] == "R001"
        assert finding["path"].endswith("src/repro/module.py")
        assert finding["line"] == 5
        assert isinstance(finding["col"], int) and finding["col"] >= 1
        assert "process-global RNG" in finding["message"]
        json.dumps(payload)  # round-trips

    def test_json_carries_suppression_reason(self, check_snippet):
        report = check_snippet("""
            import random

            def jitter():
                return random.random()  # repro: allow[R001] because fixture
        """)
        payload = render_json(report)
        assert payload["findings"] == []
        (suppressed,) = payload["suppressed"]
        assert suppressed["suppressed"] is True
        assert suppressed["reason"] == "because fixture"

    def test_text_report_lists_location_and_summary(self, check_snippet):
        report = check_snippet(R001_SNIPPET)
        text = render_text(report)
        assert "src/repro/module.py:5:" in text
        assert "R001" in text
        assert "1 file(s) checked: 1 finding(s), 0 suppressed" in text

    def test_findings_sorted_by_location(self, tmp_path):
        for name, line in (("b.py", "x = random.random()"),
                           ("a.py", "y = random.random()")):
            (tmp_path / name).write_text(f"import random\n{line}\n")
        report = check_paths([str(tmp_path)])
        paths = [finding.path for finding in report.findings]
        assert paths == sorted(paths)


class TestExitCodes:
    def test_clean_run_exits_zero(self, check_snippet):
        report = check_snippet("""
            def pure(seed):
                return seed * 2
        """)
        assert report.exit_code == EXIT_CLEAN

    def test_findings_exit_one(self, check_snippet):
        report = check_snippet(R001_SNIPPET)
        assert report.exit_code == EXIT_FINDINGS

    def test_suppressed_findings_still_exit_zero(self, check_snippet):
        report = check_snippet("""
            import random

            def jitter():
                return random.random()  # repro: allow[R001] fixture
        """)
        assert report.exit_code == EXIT_CLEAN

    def test_syntax_error_exits_two(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        report = check_paths([str(bad)])
        assert report.exit_code == EXIT_ERROR
        ((path, message),) = report.errors
        assert path.endswith("broken.py")
        assert "syntax error" in message

    def test_missing_path_exits_two(self, tmp_path):
        report = check_paths([str(tmp_path / "nowhere")])
        assert report.exit_code == EXIT_ERROR
        assert report.errors[0][1] == "no such file or directory"

    def test_pycache_and_hidden_files_are_skipped(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "stale.py").write_text("import random\nrandom.random()\n")
        hidden = tmp_path / ".venv"
        hidden.mkdir()
        (hidden / "vendored.py").write_text("import random\nrandom.random()\n")
        (tmp_path / "ok.py").write_text("x = 1\n")
        report = check_paths([str(tmp_path)])
        assert report.files_checked == 1
        assert report.exit_code == EXIT_CLEAN
