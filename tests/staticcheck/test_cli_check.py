"""The ``repro check`` subcommand: formats, rule selection, exit codes."""

import json
import textwrap

from repro.cli import main

VIOLATION = """
    import random

    def jitter():
        return random.random()
"""

CLEAN = """
    def pure(seed):
        return seed * 2
"""


def write(tmp_path, source, name="module.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return str(path)


class TestCheckCommand:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        target = write(tmp_path, CLEAN)
        assert main(["check", target]) == 0
        out = capsys.readouterr().out
        assert "1 file(s) checked: 0 finding(s)" in out

    def test_violation_exits_one_and_prints_location(self, tmp_path, capsys):
        target = write(tmp_path, VIOLATION)
        assert main(["check", target]) == 1
        out = capsys.readouterr().out
        assert "R001" in out
        assert "module.py:5:" in out

    def test_json_format(self, tmp_path, capsys):
        target = write(tmp_path, VIOLATION)
        assert main(["check", target, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["findings"][0]["rule"] == "R001"

    def test_rules_selection_skips_other_rules(self, tmp_path, capsys):
        target = write(tmp_path, VIOLATION)
        assert main(["check", target, "--rules", "R002,R005"]) == 0
        assert main(["check", target, "--rules", "R001"]) == 1

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        target = write(tmp_path, CLEAN)
        assert main(["check", target, "--rules", "R999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        assert main(["check", str(bad)]) == 2
        assert "syntax error" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R001", "R002", "R003", "R004", "R005"):
            assert rule_id in out

    def test_show_suppressed_prints_reason(self, tmp_path, capsys):
        target = write(tmp_path, """
            import random

            def jitter():
                return random.random()  # repro: allow[R001] demo reason
        """)
        assert main(["check", target, "--show-suppressed"]) == 0
        out = capsys.readouterr().out
        assert "suppressed (demo reason)" in out
