"""Tests for DynamicScenario serialisation and execution."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError
from repro.simulation.scenario import (
    DynamicScenario,
    load_dynamic_scenario,
    run_dynamic_scenario,
)


class TestValidation:
    def test_rejects_unknown_event_profile(self):
        with pytest.raises(ExperimentError):
            DynamicScenario(name="bad", algorithm="algorithm1", events="tsunami")

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(ExperimentError):
            DynamicScenario(name="bad", algorithm="frobnicate")

    def test_rejects_negative_rounds(self):
        with pytest.raises(ExperimentError):
            DynamicScenario(name="bad", algorithm="algorithm1", rounds=-1)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ExperimentError):
            DynamicScenario.from_dict({"name": "x", "algorithm": "algorithm1",
                                       "warp_factor": 9})


class TestRoundTrip:
    def test_json_roundtrip(self, tmp_path):
        scenario = DynamicScenario(name="rt", algorithm="algorithm2", topology="cycle",
                                   num_nodes=8, tokens_per_node=4, events="poisson",
                                   rounds=30, seed=3)
        path = scenario.to_json(tmp_path / "dyn.json")
        loaded = load_dynamic_scenario(path)
        assert loaded == scenario


class TestExecution:
    def test_run_produces_dynamic_result(self):
        scenario = DynamicScenario(name="run", algorithm="algorithm2", topology="cycle",
                                   num_nodes=8, tokens_per_node=4, events="burst",
                                   rounds=50, seed=3)
        result = run_dynamic_scenario(scenario)
        assert result.rounds == 50
        assert result.event_timeline is not None
        assert len(result.trace_max_min) == 51
        assert len(result.trace_total_weight) == 51
        assert result.extra["arrivals"] > 0
