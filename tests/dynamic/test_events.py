"""Tests for the dynamic event model and generators."""

from __future__ import annotations

import pytest

from repro.dynamic.events import (
    ARRIVAL,
    DEPARTURE,
    EVENT_PROFILES,
    JOIN,
    LEAVE,
    AdversarialHotspot,
    BurstyArrivals,
    CompositeGenerator,
    DynamicEvent,
    NodeChurn,
    PoissonArrivals,
    PoissonDepartures,
    ScheduledEvents,
    StreamView,
    make_event_generator,
)
from repro.exceptions import ExperimentError
from repro.network import topologies


def make_view(round_index=0, loads=None, network=None):
    network = network or topologies.cycle(4)
    labels = tuple(range(network.num_nodes))
    if loads is None:
        loads = {label: 5 for label in labels}
    return StreamView(round_index=round_index, labels=labels,
                      loads=loads, network=network)


class TestDynamicEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ExperimentError):
            DynamicEvent("explode", node=0)

    def test_rejects_negative_tokens(self):
        with pytest.raises(ExperimentError):
            DynamicEvent(ARRIVAL, node=0, tokens=-1)

    def test_arrival_requires_node(self):
        with pytest.raises(ExperimentError):
            DynamicEvent(ARRIVAL, tokens=3)

    def test_join_requires_attachment(self):
        with pytest.raises(ExperimentError):
            DynamicEvent(JOIN)

    def test_as_dict_roundtrips_fields(self):
        event = DynamicEvent(JOIN, attach_to=(1, 2), tokens=4, tag="churn")
        record = event.as_dict()
        assert record["kind"] == JOIN
        assert record["attach_to"] == [1, 2]
        assert record["tokens"] == 4
        assert record["tag"] == "churn"


class TestStreamView:
    def test_total_load(self):
        view = make_view(loads={0: 1, 1: 2, 2: 3, 3: 4})
        assert view.total_load == 10

    def test_max_load_label_prefers_smallest_on_ties(self):
        view = make_view(loads={0: 3, 1: 7, 2: 7, 3: 0})
        assert view.max_load_label() == 1


class TestScheduledEvents:
    def test_returns_events_only_at_their_round(self):
        burst = DynamicEvent(ARRIVAL, node=0, tokens=9)
        generator = ScheduledEvents({3: [burst]})
        assert generator.events(make_view(round_index=0)) == []
        assert generator.events(make_view(round_index=3)) == [burst]

    def test_rejects_negative_rounds(self):
        with pytest.raises(ExperimentError):
            ScheduledEvents({-1: []})


class TestDeterminism:
    """Generators with fixed seeds replay the exact same event stream."""

    @pytest.mark.parametrize("factory", [
        lambda: PoissonArrivals(3.0, seed=42),
        lambda: PoissonDepartures(3.0, seed=42),
        lambda: BurstyArrivals(20, period=5, seed=42),
        lambda: AdversarialHotspot(2, seed=42),
        lambda: NodeChurn(join_probability=0.5, leave_probability=0.5, seed=42),
    ])
    def test_same_seed_same_stream(self, factory):
        views = [make_view(round_index=t, loads={0: 5, 1: 3, 2: 8, 3: 1})
                 for t in range(20)]
        first = [factory().events(view) for view in views]
        second = [factory().events(view) for view in views]
        assert first == second
        assert any(events for events in first)  # the comparison is not vacuous

    def test_different_seeds_differ(self):
        views = [make_view(round_index=t) for t in range(30)]
        a = [PoissonArrivals(2.0, seed=1).events(view) for view in views]
        b = [PoissonArrivals(2.0, seed=2).events(view) for view in views]
        assert a != b


class TestPoissonGenerators:
    def test_arrivals_target_existing_labels(self):
        view = make_view()
        for event in PoissonArrivals(10.0, seed=0).events(view):
            assert event.kind == ARRIVAL
            assert event.node in view.labels
            assert event.tokens > 0

    def test_departures_never_exceed_available_load(self):
        view = make_view(loads={0: 1, 1: 0, 2: 2, 3: 0})
        for _ in range(50):
            for event in PoissonDepartures(5.0, seed=7).events(view):
                assert event.kind == DEPARTURE
                assert event.tokens <= view.loads[event.node]

    def test_departures_from_empty_system(self):
        view = make_view(loads={label: 0 for label in range(4)})
        assert PoissonDepartures(5.0, seed=0).events(view) == []


class TestBurstyArrivals:
    def test_fires_on_schedule(self):
        generator = BurstyArrivals(12, period=10, first_round=5, seed=0)
        fired = [t for t in range(30) if generator.events(make_view(round_index=t))]
        assert fired == [5, 15, 25]

    def test_burst_is_tagged_and_sized(self):
        (event,) = BurstyArrivals(12, period=10, seed=0).events(make_view())
        assert event.tag == "burst"
        assert event.tokens == 12

    def test_fixed_target_node(self):
        generator = BurstyArrivals(12, period=1, node=2, seed=0)
        assert all(generator.events(make_view(round_index=t))[0].node == 2
                   for t in range(5))


class TestAdversarialHotspot:
    def test_targets_most_loaded_node(self):
        view = make_view(loads={0: 1, 1: 9, 2: 4, 3: 0})
        (event,) = AdversarialHotspot(3, seed=0).events(view)
        assert event.node == 1
        assert event.tokens == 3
        assert event.tag == "hotspot"


class TestNodeChurn:
    def test_join_attaches_to_existing_labels(self):
        generator = NodeChurn(join_probability=1.0, leave_probability=0.0,
                              attach_degree=2, seed=3)
        view = make_view()
        (event,) = generator.events(view)
        assert event.kind == JOIN
        assert len(event.attach_to) == 2
        assert all(label in view.labels for label in event.attach_to)

    def test_leave_targets_existing_label(self):
        generator = NodeChurn(join_probability=0.0, leave_probability=1.0, seed=3)
        (event,) = generator.events(make_view())
        assert event.kind == LEAVE
        assert event.node in range(4)

    def test_rejects_bad_probability(self):
        with pytest.raises(ExperimentError):
            NodeChurn(join_probability=1.5)


class TestProfiles:
    def test_all_profiles_build(self):
        network = topologies.cycle(8)
        for profile in EVENT_PROFILES:
            generator = make_event_generator(profile, network, 8, seed=1)
            view = make_view(network=network,
                             loads={label: 8 for label in range(8)})
            # polling must work and only yield well-formed events
            for t in range(40):
                for event in generator.events(
                        StreamView(t, tuple(range(8)),
                                   {label: 8 for label in range(8)}, network)):
                    assert event.kind in ("arrival", "departure", "join", "leave")

    def test_unknown_profile_raises(self):
        with pytest.raises(ExperimentError):
            make_event_generator("tsunami", topologies.cycle(4), 8)

    def test_composite_merges_in_order(self):
        first = ScheduledEvents({0: [DynamicEvent(ARRIVAL, node=0, tokens=1)]})
        second = ScheduledEvents({0: [DynamicEvent(ARRIVAL, node=1, tokens=2)]})
        events = CompositeGenerator([first, second]).events(make_view())
        assert [event.node for event in events] == [0, 1]
