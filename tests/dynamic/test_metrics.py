"""Tests for the dynamic metrics (steady state, recovery, drain rate)."""

from __future__ import annotations

import pytest

from repro.dynamic.metrics import (
    burst_rounds,
    drain_rate,
    recovery_report,
    recovery_time,
    steady_state_discrepancy,
    summarize_dynamic,
    time_in_band,
)
from repro.exceptions import ExperimentError
from repro.simulation.results import RunResult


def make_result(trace, timeline):
    return RunResult(
        algorithm="algorithm2", continuous_kind="fos", network_name="test+dynamic",
        num_nodes=4, max_degree=2, rounds=len(trace) - 1, total_weight=10.0,
        max_task_weight=1.0, final_max_min=trace[-1], final_max_avg=trace[-1] / 2,
        trace_max_min=list(trace), event_timeline=list(timeline),
    )


class TestSteadyState:
    def test_trailing_window_mean(self):
        trace = [100.0] * 10 + [2.0, 4.0]
        assert steady_state_discrepancy(trace, window=2) == 3.0

    def test_window_larger_than_trace_uses_whole_trace(self):
        assert steady_state_discrepancy([2.0, 4.0], window=50) == 3.0

    def test_empty_trace_rejected(self):
        with pytest.raises(ExperimentError):
            steady_state_discrepancy([])


class TestRecoveryTime:
    # Trace semantics: index t is the state after round t-1, so an event at
    # round r first shows at index r+1.
    TRACE = [2.0, 2.0, 30.0, 20.0, 9.0, 3.0]

    def test_measures_rounds_until_band_reentry(self):
        assert recovery_time(self.TRACE, event_round=1, band=10.0) == 3

    def test_none_when_never_recovering(self):
        assert recovery_time([2.0, 50.0, 40.0], event_round=0, band=10.0) is None

    def test_searches_strictly_after_the_event(self):
        # the in-band state at the event index itself must not count
        assert recovery_time([1.0, 99.0, 5.0], event_round=0, band=10.0) == 2


class TestDrainAndBand:
    def test_drain_rate(self):
        assert drain_rate([30.0, 20.0, 10.0], 0, 2) == 10.0

    def test_drain_rate_rejects_bad_window(self):
        with pytest.raises(ExperimentError):
            drain_rate([1.0, 2.0], 1, 1)

    def test_time_in_band(self):
        assert time_in_band([1.0, 20.0, 2.0, 3.0], band=5.0) == 0.75


class TestTimelineHelpers:
    TIMELINE = [
        {"round": 3, "kind": "arrival", "tokens": 50, "tag": "burst", "applied": True},
        {"round": 5, "kind": "arrival", "tokens": 1, "tag": "", "applied": True},
        {"round": 9, "kind": "arrival", "tokens": 50, "tag": "burst", "applied": False},
        {"round": 12, "kind": "arrival", "tokens": 50, "tag": "burst", "applied": True},
    ]

    def test_burst_rounds_filters_tag_and_applied(self):
        assert burst_rounds(self.TIMELINE) == [3, 12]

    def test_recovery_report(self):
        trace = [2.0] * 4 + [40.0, 15.0, 8.0] + [2.0] * 6 + [35.0, 12.0, 9.0]
        result = make_result(trace, self.TIMELINE)
        reports = recovery_report(result, band=10.0)
        assert [entry["round"] for entry in reports] == [3, 12]
        first, second = reports
        assert first["peak"] == 40.0
        assert first["recovery_time"] == 3
        assert first["drain_rate"] == pytest.approx((40.0 - 8.0) / 2)
        assert second["recovery_time"] == 3

    def test_summarize_dynamic(self):
        trace = [2.0] * 4 + [40.0, 15.0, 8.0] + [2.0] * 10
        result = make_result(trace, self.TIMELINE[:1])
        summary = summarize_dynamic(result, band=10.0, window=5)
        assert summary["bursts"] == 1
        assert summary["recovered_bursts"] == 1
        assert summary["mean_recovery_time"] == 3.0
        assert summary["steady_state"] == 2.0
        assert summary["final_max_min"] == 2.0

    def test_summarize_requires_trace(self):
        result = make_result([1.0], [])
        result.trace_max_min = None
        with pytest.raises(ExperimentError):
            summarize_dynamic(result, band=10.0)


class TestSameRoundBursts:
    """Regression: two bursts on one round used to make the peak window empty."""

    def double_burst(self, round_index):
        entry = {"round": round_index, "kind": "arrival", "tokens": 25,
                 "tag": "burst", "applied": True}
        return [dict(entry), dict(entry)]

    def test_same_round_bursts_are_one_disturbance(self):
        trace = [2.0] * 4 + [40.0, 15.0, 8.0] + [2.0] * 4
        result = make_result(trace, self.double_burst(3))
        reports = recovery_report(result, band=10.0)
        assert len(reports) == 1
        assert reports[0]["peak"] == 40.0  # was NaN before the dedupe
        assert reports[0]["recovery_time"] == 3

    def test_same_round_bursts_out_of_order_timeline(self):
        trace = [2.0] * 4 + [40.0, 8.0] + [2.0] * 3 + [30.0, 7.0]
        timeline = self.double_burst(8)[:1] + self.double_burst(3)
        result = make_result(trace, timeline)
        reports = recovery_report(result, band=10.0)
        assert [entry["round"] for entry in reports] == [3, 8]
        assert [entry["peak"] for entry in reports] == [40.0, 30.0]

    def test_burst_on_final_round_has_empty_window(self):
        # A burst applied at the last recorded round has no post-event state:
        # the peak is NaN by contract and the burst cannot have recovered.
        import math

        trace = [2.0, 2.0, 2.0]
        result = make_result(trace, self.double_burst(2))
        reports = recovery_report(result, band=10.0)
        assert len(reports) == 1
        assert math.isnan(reports[0]["peak"])
        assert reports[0]["recovery_time"] is None


class TestWarmupStart:
    TIMELINE = []

    def test_time_in_band_excludes_warmup_prefix(self):
        # Point-load start: 4 out-of-band warm-up entries, then in-band.
        trace = [50.0] * 4 + [2.0] * 12
        result = make_result(trace, [])
        diluted = summarize_dynamic(result, band=10.0)
        steady = summarize_dynamic(result, band=10.0, start=4)
        assert diluted["time_in_band"] == 0.75
        assert steady["time_in_band"] == 1.0

    def test_negative_start_rejected(self):
        result = make_result([1.0, 2.0], [])
        with pytest.raises(ExperimentError):
            summarize_dynamic(result, band=10.0, start=-1)
