"""Tests for the streaming engine: invariants, churn safety, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamic.events import (
    ARRIVAL,
    DEPARTURE,
    JOIN,
    LEAVE,
    DynamicEvent,
    NodeChurn,
    PoissonArrivals,
    PoissonDepartures,
    CompositeGenerator,
    ScheduledEvents,
    make_event_generator,
)
from repro.dynamic.stream import StreamingEngine, run_stream
from repro.exceptions import ExperimentError
from repro.network import topologies
from repro.tasks.generators import uniform_random_load


def torus_instance(seed=3, tokens_per_node=6):
    network = topologies.torus(4, dims=2)
    load = uniform_random_load(network, tokens_per_node * network.num_nodes, seed=seed)
    return network, load


class TestValidation:
    def test_unknown_algorithm(self):
        network, load = torus_instance()
        with pytest.raises(ExperimentError):
            StreamingEngine("frobnicate", network, load, ScheduledEvents({}))

    def test_unknown_continuous_kind(self):
        network, load = torus_instance()
        with pytest.raises(ExperimentError):
            StreamingEngine("algorithm1", network, load, ScheduledEvents({}),
                            continuous_kind="teleportation")

    def test_wrong_load_length(self):
        network, _ = torus_instance()
        with pytest.raises(ExperimentError):
            StreamingEngine("algorithm1", network, [1, 2, 3], ScheduledEvents({}))

    def test_negative_rounds(self):
        network, load = torus_instance()
        with pytest.raises(ExperimentError):
            run_stream("algorithm1", network, load, ScheduledEvents({}), rounds=-1)


class TestLoadConservation:
    """Total real load always equals initial + arrivals - departures."""

    @pytest.mark.parametrize("algorithm,continuous_kind", [
        ("algorithm1", "fos"),
        ("algorithm2", "fos"),
        ("algorithm2", "random-matching"),
        ("excess-tokens", "fos"),
    ])
    def test_total_load_tracks_arrivals_minus_departures(self, algorithm, continuous_kind):
        network, load = torus_instance()
        generator = CompositeGenerator([
            PoissonArrivals(4.0, seed=1),
            PoissonDepartures(4.0, seed=2),
        ])
        engine = StreamingEngine(algorithm, network, load, generator,
                                 continuous_kind=continuous_kind, seed=5)
        initial = engine.total_real_load()
        for _ in range(60):
            engine.step()
            timeline = engine.timeline
            arrived = sum(entry["tokens"] for entry in timeline
                          if entry["kind"] in (ARRIVAL, JOIN) and entry["applied"])
            departed = sum(entry["tokens"] for entry in timeline
                           if entry["kind"] == DEPARTURE and entry["applied"])
            assert engine.total_real_load() == initial + arrived - departed

    def test_departure_capped_at_available_tokens(self):
        network = topologies.cycle(4)
        load = np.array([3, 0, 0, 0])
        generator = ScheduledEvents({0: [DynamicEvent(DEPARTURE, node=0, tokens=100)]})
        result = run_stream("algorithm1", network, load, generator, rounds=2, seed=0)
        (entry,) = result.event_timeline
        assert entry["applied"]
        assert entry["tokens"] == 3  # the realised amount, not the requested 100
        assert result.trace_total_weight[-1] == 0.0


class TestChurn:
    def test_connectivity_preserved_under_heavy_churn(self):
        network, load = torus_instance()
        generator = NodeChurn(join_probability=0.4, leave_probability=0.6,
                              attach_degree=2, seed=9)
        engine = StreamingEngine("algorithm2", network, load, generator, seed=9)
        for _ in range(80):
            engine.step()
            assert engine.network.is_connected()
            assert engine.network.num_nodes >= 3

    def test_leave_that_would_disconnect_is_rejected(self):
        network = topologies.star(5)  # node 0 is the hub
        load = np.array([10, 0, 0, 0, 0])
        generator = ScheduledEvents({0: [DynamicEvent(LEAVE, node=0)]})
        engine = StreamingEngine("algorithm1", network, load, generator, seed=0)
        engine.step()
        (entry,) = engine.timeline
        assert not entry["applied"]
        assert engine.network.num_nodes == 5
        assert engine.network.is_connected()

    def test_join_adds_connected_node_with_fresh_label(self):
        network = topologies.cycle(4)
        load = np.array([4, 4, 4, 4])
        generator = ScheduledEvents({
            1: [DynamicEvent(JOIN, attach_to=(0, 2), tokens=6)],
        })
        engine = StreamingEngine("algorithm1", network, load, generator, seed=0)
        engine.step()
        assert engine.network.num_nodes == 4
        engine.step()
        assert engine.network.num_nodes == 5
        assert engine.network.is_connected()
        assert engine.labels == (0, 1, 2, 3, 4)  # fresh stable label 4
        assert engine.total_real_load() == 22

    def test_leave_redistributes_tokens_to_neighbors(self):
        network = topologies.cycle(4)
        load = np.array([0, 9, 0, 0])
        generator = ScheduledEvents({0: [DynamicEvent(LEAVE, node=1)]})
        engine = StreamingEngine("algorithm1", network, load, generator, seed=0)
        engine.step()
        assert engine.labels == (0, 2, 3)
        assert engine.total_real_load() == 9  # orphaned tokens survive

    def test_events_for_departed_labels_are_rejected(self):
        network = topologies.cycle(4)
        load = np.array([2, 2, 2, 2])
        generator = ScheduledEvents({
            0: [DynamicEvent(LEAVE, node=1)],
            1: [DynamicEvent(ARRIVAL, node=1, tokens=5)],  # label 1 is gone
        })
        engine = StreamingEngine("algorithm1", network, load, generator, seed=0)
        engine.step()
        engine.step()
        arrival = engine.timeline[-1]
        assert arrival["kind"] == ARRIVAL and not arrival["applied"]
        assert engine.total_real_load() == 8


class TestStableLabelContract:
    def test_network_node_labels_map_indices_to_stable_labels(self):
        network = topologies.cycle(5)
        load = np.array([2, 2, 2, 2, 2])
        generator = ScheduledEvents({0: [DynamicEvent(LEAVE, node=1)]})
        engine = StreamingEngine("algorithm1", network, load, generator, seed=0)
        engine.step()
        assert engine.labels == (0, 2, 3, 4)
        assert list(engine.view().network.node_labels) == [0, 2, 3, 4]


class TestCounterAccumulation:
    """Failure-mode counters survive re-couplings instead of being discarded."""

    RECOUPLE = {3: [DynamicEvent(ARRIVAL, node=0, tokens=1)]}

    def test_went_negative_persists_across_recouplings(self):
        network, load = torus_instance()
        engine = StreamingEngine("round-down", network, load,
                                 ScheduledEvents(self.RECOUPLE), seed=0)
        engine.step()
        # Simulate the pre-event balancer segment having observed negativity,
        # then drive past the event so the balancer is rebuilt.
        engine.balancer._went_negative = True
        for _ in range(5):
            engine.step()
        assert engine.recouplings == 1
        assert not engine.balancer.went_negative  # the new segment is clean...
        assert engine.result().went_negative      # ...but the run remembers

    def test_dummy_tokens_persist_across_recouplings(self):
        network, load = torus_instance()
        engine = StreamingEngine("algorithm2", network, load,
                                 ScheduledEvents(self.RECOUPLE), seed=0)
        engine.step()
        engine.balancer._dummy_tokens_created = 7
        engine.balancer._used_infinite_source = True
        for _ in range(5):
            engine.step()
        assert engine.recouplings == 1
        result = engine.result()
        assert result.dummy_tokens == 7 + engine.balancer.dummy_tokens_created
        assert result.used_infinite_source


class TestRecoupling:
    def test_recouples_only_when_state_changes(self):
        network, load = torus_instance()
        generator = ScheduledEvents({
            5: [DynamicEvent(ARRIVAL, node=0, tokens=10)],
            9: [DynamicEvent(DEPARTURE, node=0, tokens=0)],  # no-op: nothing changes
        })
        result = run_stream("algorithm1", network, load, generator, rounds=20, seed=1)
        assert result.extra["recouplings"] == 1.0

    def test_static_stream_matches_plain_run_shape(self):
        network, load = torus_instance()
        result = run_stream("algorithm2", network, load, ScheduledEvents({}),
                            rounds=40, seed=4)
        assert result.extra["recouplings"] == 0.0
        assert result.event_timeline == []
        assert len(result.trace_max_min) == 41
        # with no events, the total real load never changes
        assert set(result.trace_total_weight) == {float(load.sum())}


class TestDeterminism:
    def test_identical_seeds_identical_runs(self):
        def one_run():
            network, load = torus_instance()
            generator = make_event_generator("churn", network, 6, seed=13)
            return run_stream("algorithm2", network, load, generator,
                              rounds=50, continuous_kind="fos", seed=13)

        first, second = one_run(), one_run()
        assert first.trace_max_min == second.trace_max_min
        assert first.trace_total_weight == second.trace_total_weight
        assert first.event_timeline == second.event_timeline

    def test_run_result_summary_fields(self):
        network, load = torus_instance()
        generator = make_event_generator("burst", network, 6, seed=2)
        result = run_stream("algorithm2", network, load, generator, rounds=60, seed=2)
        assert result.algorithm == "algorithm2"
        assert result.rounds == 60
        assert result.network_name.endswith("+dynamic")
        assert result.total_weight == result.trace_total_weight[-1]
        row = result.as_dict()
        assert row["events"] == len(result.event_timeline)
        assert "recouplings" in row
