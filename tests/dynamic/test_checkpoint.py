"""Checkpoint/resume bit-identity and rejection of damaged checkpoints."""

from __future__ import annotations

import json
from dataclasses import asdict

import pytest

from repro.checkpoint import (
    CHECKPOINT_VERSION,
    StreamCheckpoint,
    checkpoint_engine,
    read_checkpoint,
    restore_engine,
    resume_stream,
    write_checkpoint,
)
from repro.dynamic.events import make_event_generator
from repro.dynamic.stream import StreamingEngine
from repro.exceptions import CheckpointError, ExperimentError
from repro.faults import truncate_checkpoint
from repro.simulation.scenario import DynamicScenario, run_dynamic_scenario
from repro.store.runstore import canonical_json


def _scenario(rng_mode="counter", backend="auto", algorithm="randomized-rounding",
              max_task_weight=1, rounds=24, **overrides):
    params = dict(
        name="ckpt", algorithm=algorithm, topology="cycle", num_nodes=10,
        tokens_per_node=6, rounds=rounds, events="mixed", seed=13,
        rng_mode=rng_mode, backend=backend, max_task_weight=max_task_weight)
    params.update(overrides)
    return DynamicScenario(**params)


def _build_engine(scenario):
    seeds = scenario._purpose_seeds()
    network = scenario.build_network()
    if scenario.max_task_weight > 1:
        load = scenario.build_weighted_load(network)
    else:
        load = scenario.build_load(network)
    generator = make_event_generator(scenario.events, network,
                                     scenario.tokens_per_node,
                                     seed=seeds.events)
    return StreamingEngine(scenario.algorithm, network, load, generator,
                           continuous_kind=scenario.continuous_kind,
                           seed=seeds.algorithm, backend=scenario.backend,
                           rng_mode=scenario.rng_mode)


def _fresh_generator(scenario):
    seeds = scenario._purpose_seeds()
    network = scenario.build_network()
    return make_event_generator(scenario.events, network,
                                scenario.tokens_per_node, seed=seeds.events)


def _json_round_trip(checkpoint):
    """Serialise through canonical JSON exactly as the file format does."""
    return StreamCheckpoint(**json.loads(canonical_json(asdict(checkpoint))))


class TestResumeBitIdentity:
    @pytest.mark.parametrize("rng_mode", ["counter", "sequential"])
    @pytest.mark.parametrize("backend", ["object", "array"])
    def test_resume_at_every_round_matches_uninterrupted(self, rng_mode,
                                                         backend):
        """Kill at ANY round, resume, and get the exact same trajectory."""
        scenario = _scenario(rng_mode=rng_mode, backend=backend)
        baseline = run_dynamic_scenario(scenario)

        engine = _build_engine(scenario)
        trace = [engine.current_discrepancy()]
        totals = [float(engine.total_real_load())]
        checkpoints = [_json_round_trip(checkpoint_engine(
            engine, total_rounds=scenario.rounds, trace=trace, totals=totals))]
        for _ in range(scenario.rounds):
            engine.step()
            trace.append(engine.current_discrepancy())
            totals.append(float(engine.total_real_load()))
            checkpoints.append(_json_round_trip(checkpoint_engine(
                engine, total_rounds=scenario.rounds, trace=trace,
                totals=totals)))

        for round_index, checkpoint in enumerate(checkpoints):
            assert checkpoint.round_index == round_index
            resumed = resume_stream(checkpoint,
                                    generator=_fresh_generator(scenario))
            assert resumed.trace_max_min == baseline.trace_max_min, \
                f"trajectory diverged when resuming from round {round_index}"
            assert resumed.trace_total_weight == baseline.trace_total_weight
            assert resumed.extra == baseline.extra

    def test_weighted_stream_resumes_bit_identically(self, tmp_path):
        scenario = _scenario(algorithm="algorithm1", max_task_weight=4)
        baseline = run_dynamic_scenario(scenario)
        engine = _build_engine(scenario)
        trace = [engine.current_discrepancy()]
        totals = [float(engine.total_real_load())]
        for _ in range(scenario.rounds // 2):
            engine.step()
            trace.append(engine.current_discrepancy())
            totals.append(float(engine.total_real_load()))
        path = write_checkpoint(
            checkpoint_engine(engine, total_rounds=scenario.rounds,
                              trace=trace, totals=totals),
            tmp_path / "weighted.json")
        resumed = resume_stream(path, generator=_fresh_generator(scenario))
        assert resumed.trace_max_min == baseline.trace_max_min
        assert resumed.trace_total_weight == baseline.trace_total_weight
        assert resumed.extra == baseline.extra

    @pytest.mark.parametrize("cadence", [1, 5, 7])
    def test_any_checkpoint_cadence_end_state_identical(self, tmp_path,
                                                        cadence):
        scenario = _scenario(rounds=20)
        baseline = run_dynamic_scenario(scenario)
        path = tmp_path / "cadence.json"
        checkpointed = run_dynamic_scenario(scenario, checkpoint_every=cadence,
                                            checkpoint_path=path)
        # checkpointing is observation-only: the run itself is unchanged
        assert checkpointed.trace_max_min == baseline.trace_max_min
        # the final snapshot resumes to the identical (already complete) run
        resumed = resume_stream(path)
        assert resumed.trace_max_min == baseline.trace_max_min
        assert resumed.extra == baseline.extra

    def test_scenario_meta_rebuilds_generator(self, tmp_path):
        """run_dynamic_scenario embeds the scenario; resume needs no inputs."""
        scenario = _scenario(rounds=18)
        baseline = run_dynamic_scenario(scenario)
        path = tmp_path / "meta.json"
        run_dynamic_scenario(scenario, checkpoint_every=7,
                             checkpoint_path=path)
        resumed = resume_stream(path)  # generator rebuilt from meta
        assert resumed.trace_max_min == baseline.trace_max_min

    def test_resume_continues_past_stored_horizon(self, tmp_path):
        scenario = _scenario(rounds=10)
        longer = _scenario(rounds=16)
        baseline = run_dynamic_scenario(longer)
        path = tmp_path / "extend.json"
        run_dynamic_scenario(scenario, checkpoint_every=10,
                             checkpoint_path=path,)
        resumed = resume_stream(path, generator=_fresh_generator(scenario),
                                rounds=16)
        assert resumed.trace_max_min == baseline.trace_max_min


class TestCheckpointValidation:
    def _written(self, tmp_path, **scenario_overrides):
        scenario = _scenario(rounds=8, **scenario_overrides)
        engine = _build_engine(scenario)
        trace = [engine.current_discrepancy()]
        totals = [float(engine.total_real_load())]
        for _ in range(4):
            engine.step()
            trace.append(engine.current_discrepancy())
            totals.append(float(engine.total_real_load()))
        return write_checkpoint(
            checkpoint_engine(engine, total_rounds=8, trace=trace,
                              totals=totals),
            tmp_path / "ckpt.json")

    def test_version_mismatch_rejected(self, tmp_path):
        path = self._written(tmp_path)
        data = json.loads(path.read_text())
        data["version"] = CHECKPOINT_VERSION + 1
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointError, match="format version"):
            read_checkpoint(path)

    def test_config_hash_mismatch_rejected(self, tmp_path):
        path = self._written(tmp_path)
        data = json.loads(path.read_text())
        data["config"]["seed"] = 999  # tamper without re-hashing
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointError, match="config hash mismatch"):
            read_checkpoint(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = self._written(tmp_path)
        truncate_checkpoint(path, keep_fraction=0.5)
        with pytest.raises(CheckpointError, match="corrupt or truncated"):
            read_checkpoint(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "not-a-checkpoint.json"
        path.write_text('{"hello": "world"}\n')
        with pytest.raises(CheckpointError, match="not a"):
            read_checkpoint(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="no such checkpoint"):
            read_checkpoint(tmp_path / "absent.json")

    def test_atomic_write_preserves_previous_snapshot(self, tmp_path):
        """A rename-based write never leaves a half-written file behind."""
        path = self._written(tmp_path)
        before = path.read_text()
        read_checkpoint(path)  # valid
        # overwrite with a new snapshot; the write goes through a temp file
        scenario = _scenario(rounds=8)
        engine = _build_engine(scenario)
        write_checkpoint(checkpoint_engine(engine, total_rounds=8,
                                           trace=[0.0], totals=[0.0]), path)
        after = path.read_text()
        assert after != before
        read_checkpoint(path)  # still a complete, valid checkpoint
        assert not list(tmp_path.glob("*.tmp")), "temp files must not leak"

    def test_generator_shape_mismatch_rejected(self, tmp_path):
        """Restoring onto a generator of a different shape fails loudly."""
        path = self._written(tmp_path)
        checkpoint = read_checkpoint(path)
        other = _scenario(rounds=8, events="poisson")
        with pytest.raises(ExperimentError):
            restore_engine(checkpoint, generator=_fresh_generator(other))

    def test_resume_without_meta_or_generator_fails(self, tmp_path):
        path = self._written(tmp_path)  # no scenario meta attached
        with pytest.raises(CheckpointError, match="scenario metadata"):
            resume_stream(path)

    def test_trace_length_mismatch_rejected(self, tmp_path):
        path = self._written(tmp_path)
        data = json.loads(path.read_text())
        data["trace_max_min"] = data["trace_max_min"][:-2]
        # keep the config hash valid: only the traces were damaged
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointError, match="trace length"):
            resume_stream(path, generator=_fresh_generator(_scenario(rounds=8)))

    def test_checkpoint_every_requires_target(self):
        scenario = _scenario(rounds=6)
        with pytest.raises(ExperimentError, match="checkpoint_path"):
            run_dynamic_scenario(scenario, checkpoint_every=2)
