"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network import topologies
from repro.network.graph import Network
from repro.tasks.assignment import TaskAssignment
from repro.tasks.generators import point_load, uniform_random_load
from repro.tasks.task import TaskFactory


@pytest.fixture
def cycle8() -> Network:
    """An 8-node cycle (degree 2, diameter 4)."""
    return topologies.cycle(8)


@pytest.fixture
def torus5() -> Network:
    """A 5x5 torus (degree 4)."""
    return topologies.torus(5, dims=2)


@pytest.fixture
def hypercube4() -> Network:
    """A 4-dimensional hypercube (16 nodes, degree 4)."""
    return topologies.hypercube(4)


@pytest.fixture
def star6() -> Network:
    """A star with one hub and five leaves (maximum degree 5)."""
    return topologies.star(6)


@pytest.fixture
def path4() -> Network:
    """A 4-node path."""
    return topologies.path(4)


@pytest.fixture
def speedy_cycle() -> Network:
    """A 6-node cycle with heterogeneous integer speeds."""
    return topologies.cycle(6).with_speeds([1, 2, 1, 3, 1, 2])


@pytest.fixture
def point_load_cycle8(cycle8) -> np.ndarray:
    """A point load of 64 tokens on node 0 of the 8-cycle."""
    return point_load(cycle8, 64)


@pytest.fixture
def random_load_torus5(torus5) -> np.ndarray:
    """A random token load on the 5x5 torus (fixed seed)."""
    return uniform_random_load(torus5, 32 * torus5.num_nodes, seed=11)


@pytest.fixture
def unit_assignment_cycle8(cycle8, point_load_cycle8) -> TaskAssignment:
    """A unit-token assignment matching the point load on the 8-cycle."""
    return TaskAssignment.from_unit_loads(cycle8, point_load_cycle8)


@pytest.fixture
def task_factory() -> TaskFactory:
    """A fresh task factory."""
    return TaskFactory()
